// Package live is the online counterpart of the offline serving simulator:
// a real concurrent recommendation server executing the paper's serving
// loop (Fig. 8) on the host. Queries arrive via Submit from any number of
// goroutines; a scheduler routes each query to one of two executor lanes —
// queries at or above the GPU threshold go whole to a modeled accelerator
// lane bounded by the device's stream count, the rest are split into
// batch-sized requests dispatched to a CPU worker pool running actual model
// forward passes; measured latencies feed a sliding-window tail estimator;
// and an optional DeepRecSched-style controller retunes both knobs — batch
// size and offload threshold — against the measured p95 while the service
// runs.
//
// The offline simulator answers "what would this policy sustain?"; this
// package *is* the policy, serving live traffic. They share the model zoo,
// the batching discipline, the accelerator performance model, and the
// tail-latency objective, so a configuration tuned offline can be deployed
// here unchanged.
//
// A Service is one serving node. Config.Scale stretches its service times
// by a per-node factor — the live counterpart of the offline fleet
// simulator's ScaledEngine node-heterogeneity model — and LatencySnapshot
// exposes the online latency window for cross-node aggregation; both exist
// so internal/fleet can shard traffic across N replica Services, the
// paper's at-scale tier made live.
package live

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/deeprecinfra/deeprecsys/internal/model"
	"github.com/deeprecinfra/deeprecsys/internal/platform"
	"github.com/deeprecinfra/deeprecsys/internal/stats"
	"github.com/deeprecinfra/deeprecsys/internal/workload"
)

// ErrClosed is returned by Submit after Close has begun.
var ErrClosed = errors.New("live: service closed")

// MaxBatchSize caps the per-request batch size, matching the range the
// paper's hill climb explores (up to 1024).
const MaxBatchSize = 1024

// Config parameterizes a Service. Model is required; every other field has
// a working default.
type Config struct {
	// Model executes the forward passes. It must not be mutated while the
	// service runs; concurrent Forward calls are safe by construction
	// (weights are read-only, outputs freshly allocated).
	Model *model.Model
	// Workers is the CPU worker-pool size (default GOMAXPROCS).
	Workers int
	// BatchSize is the initial per-request batch size (default 256). The
	// controller retunes it when AutoTune is set.
	BatchSize int
	// GPU provisions the modeled accelerator lane (nil = CPU-only):
	// offloaded queries occupy one of its Streams slots for the modeled
	// service time GPU.QueryTime. Routing is governed by GPUThreshold.
	GPU *platform.GPU
	// GPUThreshold routes queries of at least this size, whole, to the
	// accelerator lane (0 = no offload). Setting it requires GPU. The
	// controller walks this knob too when the lane is present.
	GPUThreshold int
	// SLA is the p95 tail-latency target reported by Stats and steered
	// toward by the controller. Required when AutoTune is set.
	SLA time.Duration
	// AutoTune enables the background controller: a hill climb on the
	// batch-size and offload-threshold knobs against the measured p95 (the
	// online analogue of DeepRecSched's tuning loop).
	AutoTune bool
	// TuneInterval is the controller's adjustment period (default 250ms).
	TuneInterval time.Duration
	// WindowSize bounds the online latency window (default 4096 samples).
	WindowSize int
	// QueueDepth bounds the request queue (default 8 per worker).
	QueueDepth int
	// IntraOp enables intra-query parallelism on the CPU lane: a worker
	// splits any chunk of at least 2·model.MinSplitRows candidates
	// row-wise across up to IntraOp goroutines (internal/par), each with
	// its own scratch arena. Results are bit-identical to serial execution
	// — forward passes are row-independent — so this is purely a latency
	// knob for big-batch queries on multi-core hosts. Default 1 (off).
	IntraOp int
	// Seed makes the per-worker input RNGs deterministic (default 1).
	Seed int64
	// Scale stretches every service time by this factor (default 1) — the
	// live counterpart of the fleet simulator's per-node ScaledEngine:
	// 1.05 models a node 5% slower than nominal (silicon quality, thermal
	// headroom, co-tenancy). The accelerator lane scales its modeled
	// service time directly; the CPU lane executes real forward passes, so
	// it can only be slowed — factors above 1 pad each chunk
	// proportionally, factors below 1 floor at real execution speed.
	Scale float64
}

// withDefaults returns cfg with defaults filled in, validating what cannot
// be defaulted.
func (cfg Config) withDefaults() (Config, error) {
	if cfg.Model == nil {
		return cfg, errors.New("live: Config.Model is required")
	}
	if cfg.Workers == 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Workers < 1 {
		return cfg, fmt.Errorf("live: %d workers", cfg.Workers)
	}
	if cfg.BatchSize == 0 {
		cfg.BatchSize = 256
	}
	if cfg.BatchSize < 1 || cfg.BatchSize > MaxBatchSize {
		return cfg, fmt.Errorf("live: batch size %d outside [1, %d]", cfg.BatchSize, MaxBatchSize)
	}
	if cfg.GPUThreshold < 0 || cfg.GPUThreshold > workload.MaxQuerySize {
		return cfg, fmt.Errorf("live: GPU threshold %d outside [0, %d]", cfg.GPUThreshold, workload.MaxQuerySize)
	}
	if cfg.GPUThreshold > 0 && cfg.GPU == nil {
		return cfg, errors.New("live: GPU threshold set without an accelerator (Config.GPU)")
	}
	if cfg.SLA < 0 {
		return cfg, fmt.Errorf("live: negative SLA %v", cfg.SLA)
	}
	if cfg.AutoTune && cfg.SLA == 0 {
		return cfg, errors.New("live: AutoTune requires an SLA target")
	}
	if cfg.TuneInterval == 0 {
		cfg.TuneInterval = 250 * time.Millisecond
	}
	if cfg.TuneInterval < 0 {
		return cfg, fmt.Errorf("live: negative tune interval %v", cfg.TuneInterval)
	}
	if cfg.WindowSize == 0 {
		cfg.WindowSize = 4096
	}
	if cfg.WindowSize < 1 {
		return cfg, fmt.Errorf("live: window size %d < 1", cfg.WindowSize)
	}
	if cfg.AutoTune && cfg.WindowSize < minTuneSamples {
		return cfg, fmt.Errorf("live: AutoTune needs a window of at least %d samples, got %d", minTuneSamples, cfg.WindowSize)
	}
	if cfg.QueueDepth == 0 {
		cfg.QueueDepth = 8 * cfg.Workers
	}
	if cfg.QueueDepth < 1 {
		return cfg, fmt.Errorf("live: queue depth %d < 1", cfg.QueueDepth)
	}
	if cfg.IntraOp == 0 {
		cfg.IntraOp = 1
	}
	if cfg.IntraOp < 1 || cfg.IntraOp > 64 {
		return cfg, fmt.Errorf("live: intra-op parallelism %d outside [1, 64]", cfg.IntraOp)
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Scale == 0 {
		cfg.Scale = 1
	}
	if cfg.Scale <= 0 {
		return cfg, fmt.Errorf("live: scale factor %v must be positive", cfg.Scale)
	}
	return cfg, nil
}

// Query is one live recommendation request: rank Candidates items for one
// user and return the TopN highest-CTR items (TopN 0 skips ranking and
// measures latency only, which load tests use). Candidates is bounded by
// workload.MaxQuerySize, the same cap every other query path enforces.
type Query struct {
	Candidates int
	TopN       int
}

// Reply is the answer to one Query.
type Reply struct {
	// Recs is the TopN ranked recommendations (nil when TopN is 0).
	Recs []model.Ranked
	// Latency is the measured end-to-end query latency.
	Latency time.Duration
	// BatchSize is the per-request batch size the query was executed at:
	// the split size on the CPU lane, the whole query size when offloaded.
	BatchSize int
	// Offloaded reports whether the accelerator lane served the query.
	Offloaded bool
}

// Stats is an online snapshot of the service.
type Stats struct {
	// Submitted / Completed / Cancelled are lifetime query counts.
	Submitted uint64
	Completed uint64
	Cancelled uint64
	// BatchSize is the current per-request batch size.
	BatchSize int
	// GPUThreshold is the current offload threshold (0 = no offload).
	GPUThreshold int
	// GPUQueries is the lifetime count of queries routed to the
	// accelerator lane (counted at admission, like the simulator).
	GPUQueries uint64
	// GPUQueryShare is the fraction of admitted queries offloaded;
	// GPUWorkShare is the fraction of candidate-item work offloaded — the
	// live counterparts of the simulator's Fig. 14 series.
	GPUQueryShare float64
	GPUWorkShare  float64
	// WorkItems is the lifetime count of admitted candidate items across
	// both lanes and GPUItems the offloaded portion — the integer counts
	// behind GPUWorkShare, exposed so a fleet front end can aggregate
	// work shares exactly.
	WorkItems, GPUItems uint64
	// P50 / P95 are the windowed online latency percentiles.
	P50, P95 time.Duration
	// WindowLen is the number of samples behind the percentiles.
	WindowLen int
	// SLA echoes the configured target (0 = none).
	SLA time.Duration
	// Retunes counts knob changes (batch size or offload threshold) made
	// by the controller.
	Retunes uint64
}

// MeetsSLA reports whether the online p95 is within the target (false when
// no SLA is configured or no sample has been measured).
func (s Stats) MeetsSLA() bool {
	return s.SLA > 0 && s.WindowLen > 0 && s.P95 <= s.SLA
}

// inflight tracks one submitted query across its units of work: batch-sized
// chunks on the CPU lane, a single whole-query request when offloaded.
type inflight struct {
	topN    int
	batch   int          // execution granularity, set by the serving lane
	pending atomic.Int32 // outstanding units; closing done at zero
	skip    atomic.Bool  // cancelled: lanes drop remaining work
	done    chan struct{}

	mu   sync.Mutex
	recs []model.Ranked // per-unit top-N candidates, merged at completion
}

// retire marks one unit finished, closing done on the last.
func (q *inflight) retire() {
	if q.pending.Add(-1) == 0 {
		close(q.done)
	}
}

// chunk is one batch-sized slice of a query awaiting a CPU worker.
type chunk struct {
	q    *inflight
	base int // global index of the chunk's first candidate
	size int
}

// Service is a live concurrent recommendation server. Create one with New,
// submit queries from any number of goroutines, and Close it to drain.
type Service struct {
	cfg    Config
	cpu    *cpuPool
	acc    *accelerator // nil = CPU-only
	batch  atomic.Int64
	thresh atomic.Int64 // offload threshold; 0 = no offload
	win    *stats.Window

	mu       sync.Mutex
	closed   bool
	inFlight sync.WaitGroup // open Submit calls

	ctrlStop chan struct{}
	ctrlDone chan struct{}

	submitted atomic.Uint64
	completed atomic.Uint64
	cancelled atomic.Uint64
	retunes   atomic.Uint64

	gpuQueries atomic.Uint64
	cpuQueries atomic.Uint64
	gpuItems   atomic.Uint64
	cpuItems   atomic.Uint64
}

// New starts the executor lanes (and the controller when configured) and
// returns a running Service.
func New(cfg Config) (*Service, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	s := &Service{
		cfg: cfg,
		win: stats.NewWindow(cfg.WindowSize),
	}
	s.batch.Store(int64(cfg.BatchSize))
	s.thresh.Store(int64(cfg.GPUThreshold))
	s.cpu = newCPUPool(cfg.Model, &s.batch, cfg.Workers, cfg.QueueDepth, cfg.Seed, cfg.Scale, cfg.IntraOp)
	if cfg.GPU != nil {
		s.acc = newAccelerator(cfg.Model, cfg.GPU, cfg.Seed, cfg.Scale)
	}
	if cfg.AutoTune {
		s.ctrlStop = make(chan struct{})
		s.ctrlDone = make(chan struct{})
		go s.controller()
	}
	return s, nil
}

// Submit serves one query: queries at or above the offload threshold go
// whole to the accelerator lane, the rest are split into batch-sized
// requests executed by the CPU worker pool. Submit blocks until the query
// completes, the context is cancelled, or the service closes. It is safe
// for concurrent use from any number of goroutines.
func (s *Service) Submit(ctx context.Context, q Query) (Reply, error) {
	if q.Candidates < 1 || q.Candidates > workload.MaxQuerySize {
		return Reply{}, fmt.Errorf("live: candidates %d outside [1, %d]", q.Candidates, workload.MaxQuerySize)
	}
	if q.TopN < 0 {
		return Reply{}, fmt.Errorf("live: negative TopN %d", q.TopN)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return Reply{}, ErrClosed
	}
	s.inFlight.Add(1)
	s.mu.Unlock()
	defer s.inFlight.Done()
	s.submitted.Add(1)

	iq := &inflight{topN: q.TopN, done: make(chan struct{})}
	lane := Executor(s.cpu)
	thr := int(s.thresh.Load())
	offloaded := s.acc != nil && thr > 0 && q.Candidates >= thr
	if offloaded {
		lane = s.acc
		s.gpuQueries.Add(1)
		s.gpuItems.Add(uint64(q.Candidates))
	} else {
		s.cpuQueries.Add(1)
		s.cpuItems.Add(uint64(q.Candidates))
	}

	start := time.Now()
	if err := lane.Enqueue(ctx, iq, q.Candidates); err != nil {
		s.cancelled.Add(1)
		return Reply{}, err
	}
	if err := s.awaitQuery(ctx, iq); err != nil {
		s.cancelled.Add(1)
		return Reply{}, err
	}

	latency := time.Since(start)
	s.win.Add(latency.Seconds())
	s.completed.Add(1)

	reply := Reply{Latency: latency, BatchSize: iq.batch, Offloaded: offloaded}
	if q.TopN > 0 {
		reply.Recs = mergeTopN(iq.recs, q.TopN)
	}
	return reply, nil
}

// awaitQuery blocks until the query completes or ctx is cancelled. When
// both are ready the completion wins: the work was fully executed, so
// reporting it cancelled would drop a real latency sample from the window
// and skew the Completed/Cancelled accounting.
func (s *Service) awaitQuery(ctx context.Context, iq *inflight) error {
	select {
	case <-iq.done:
		return nil
	case <-ctx.Done():
		select {
		case <-iq.done:
			return nil // completed concurrently with the cancellation
		default:
		}
		iq.skip.Store(true)
		return ctx.Err()
	}
}

// mergeTopN merges the per-chunk candidate lists into the global top-n.
// Every chunk contributed its own top-min(n, chunkSize), so the global
// top-n is a subset of the union.
func mergeTopN(recs []model.Ranked, n int) []model.Ranked {
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].CTR != recs[j].CTR {
			return recs[i].CTR > recs[j].CTR
		}
		return recs[i].Item < recs[j].Item
	})
	if n > len(recs) {
		n = len(recs)
	}
	return recs[:n]
}

// BatchSize returns the current per-request batch size.
func (s *Service) BatchSize() int { return int(s.batch.Load()) }

// SetBatchSize retunes the per-request batch size for subsequent queries
// (manual counterpart of the AutoTune controller).
func (s *Service) SetBatchSize(b int) error {
	if b < 1 || b > MaxBatchSize {
		return fmt.Errorf("live: batch size %d outside [1, %d]", b, MaxBatchSize)
	}
	s.batch.Store(int64(b))
	return nil
}

// GPUThreshold returns the current offload threshold (0 = no offload).
func (s *Service) GPUThreshold() int { return int(s.thresh.Load()) }

// SetGPUThreshold retunes the offload threshold for subsequent queries
// (manual counterpart of the AutoTune threshold walk). 0 disables offload.
func (s *Service) SetGPUThreshold(thr int) error {
	if s.acc == nil {
		return errors.New("live: no accelerator lane (Config.GPU unset)")
	}
	if thr < 0 || thr > workload.MaxQuerySize {
		return fmt.Errorf("live: GPU threshold %d outside [0, %d]", thr, workload.MaxQuerySize)
	}
	s.thresh.Store(int64(thr))
	return nil
}

// LatencySnapshot copies the current contents of the online latency window
// in seconds (unordered). A fleet front end merges the snapshots of its
// replicas to estimate fleet-wide percentiles over one coherent sample set.
func (s *Service) LatencySnapshot() []float64 { return s.win.Snapshot() }

// Scale returns the service-time scale factor (1 = nominal speed).
func (s *Service) Scale() float64 { return s.cfg.Scale }

// Stats returns an online snapshot.
func (s *Service) Stats() Stats {
	sum := s.win.Summary()
	st := Stats{
		Submitted:    s.submitted.Load(),
		Completed:    s.completed.Load(),
		Cancelled:    s.cancelled.Load(),
		BatchSize:    s.BatchSize(),
		GPUThreshold: s.GPUThreshold(),
		GPUQueries:   s.gpuQueries.Load(),
		P50:          time.Duration(sum.P50 * float64(time.Second)),
		P95:          time.Duration(sum.P95 * float64(time.Second)),
		WindowLen:    sum.Count,
		SLA:          s.cfg.SLA,
		Retunes:      s.retunes.Load(),
	}
	if total := st.GPUQueries + s.cpuQueries.Load(); total > 0 {
		st.GPUQueryShare = float64(st.GPUQueries) / float64(total)
	}
	st.GPUItems = s.gpuItems.Load()
	st.WorkItems = st.GPUItems + s.cpuItems.Load()
	if st.WorkItems > 0 {
		st.GPUWorkShare = float64(st.GPUItems) / float64(st.WorkItems)
	}
	return st
}

// Close stops accepting queries, waits for every in-flight query to
// complete, and shuts down the executor lanes and controller. Close is
// idempotent; concurrent Submit calls either finish normally or observe
// ErrClosed.
func (s *Service) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()

	s.inFlight.Wait() // all Submits returned: no more lane admissions
	s.cpu.Close()
	if s.acc != nil {
		s.acc.Close()
	}
	if s.ctrlStop != nil {
		close(s.ctrlStop)
		<-s.ctrlDone
	}
	return nil
}
