// Package live is the online counterpart of the offline serving simulator:
// a real concurrent recommendation server executing the paper's serving
// loop (Fig. 8) on the host. Queries arrive via Submit from any number of
// goroutines; a batching scheduler splits each query into batch-sized
// requests dispatched to a CPU worker pool that runs actual model forward
// passes; measured latencies feed a sliding-window tail estimator; and an
// optional DeepRecSched-style controller retunes the batch size against the
// measured p95 while the service runs.
//
// The offline simulator answers "what would this policy sustain?"; this
// package *is* the policy, serving live traffic. They share the model zoo,
// the batching discipline, and the tail-latency objective, so a
// configuration tuned offline can be deployed here unchanged.
package live

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/deeprecinfra/deeprecsys/internal/model"
	"github.com/deeprecinfra/deeprecsys/internal/stats"
	"github.com/deeprecinfra/deeprecsys/internal/workload"
)

// ErrClosed is returned by Submit after Close has begun.
var ErrClosed = errors.New("live: service closed")

// MaxBatchSize caps the per-request batch size, matching the range the
// paper's hill climb explores (up to 1024).
const MaxBatchSize = 1024

// Config parameterizes a Service. Model is required; every other field has
// a working default.
type Config struct {
	// Model executes the forward passes. It must not be mutated while the
	// service runs; concurrent Forward calls are safe by construction
	// (weights are read-only, outputs freshly allocated).
	Model *model.Model
	// Workers is the CPU worker-pool size (default GOMAXPROCS).
	Workers int
	// BatchSize is the initial per-request batch size (default 256). The
	// controller retunes it when AutoTune is set.
	BatchSize int
	// SLA is the p95 tail-latency target reported by Stats and steered
	// toward by the controller. Required when AutoTune is set.
	SLA time.Duration
	// AutoTune enables the background controller: a hill climb on the
	// batch-size knob against the measured p95 (the online analogue of
	// DeepRecSched's tuning loop).
	AutoTune bool
	// TuneInterval is the controller's adjustment period (default 250ms).
	TuneInterval time.Duration
	// WindowSize bounds the online latency window (default 4096 samples).
	WindowSize int
	// QueueDepth bounds the request queue (default 8 per worker).
	QueueDepth int
	// Seed makes the per-worker input RNGs deterministic (default 1).
	Seed int64
}

// withDefaults returns cfg with defaults filled in, validating what cannot
// be defaulted.
func (cfg Config) withDefaults() (Config, error) {
	if cfg.Model == nil {
		return cfg, errors.New("live: Config.Model is required")
	}
	if cfg.Workers == 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Workers < 1 {
		return cfg, fmt.Errorf("live: %d workers", cfg.Workers)
	}
	if cfg.BatchSize == 0 {
		cfg.BatchSize = 256
	}
	if cfg.BatchSize < 1 || cfg.BatchSize > MaxBatchSize {
		return cfg, fmt.Errorf("live: batch size %d outside [1, %d]", cfg.BatchSize, MaxBatchSize)
	}
	if cfg.SLA < 0 {
		return cfg, fmt.Errorf("live: negative SLA %v", cfg.SLA)
	}
	if cfg.AutoTune && cfg.SLA == 0 {
		return cfg, errors.New("live: AutoTune requires an SLA target")
	}
	if cfg.TuneInterval == 0 {
		cfg.TuneInterval = 250 * time.Millisecond
	}
	if cfg.TuneInterval < 0 {
		return cfg, fmt.Errorf("live: negative tune interval %v", cfg.TuneInterval)
	}
	if cfg.WindowSize == 0 {
		cfg.WindowSize = 4096
	}
	if cfg.WindowSize < 1 {
		return cfg, fmt.Errorf("live: window size %d < 1", cfg.WindowSize)
	}
	if cfg.AutoTune && cfg.WindowSize < minTuneSamples {
		return cfg, fmt.Errorf("live: AutoTune needs a window of at least %d samples, got %d", minTuneSamples, cfg.WindowSize)
	}
	if cfg.QueueDepth == 0 {
		cfg.QueueDepth = 8 * cfg.Workers
	}
	if cfg.QueueDepth < 1 {
		return cfg, fmt.Errorf("live: queue depth %d < 1", cfg.QueueDepth)
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	return cfg, nil
}

// Query is one live recommendation request: rank Candidates items for one
// user and return the TopN highest-CTR items (TopN 0 skips ranking and
// measures latency only, which load tests use). Candidates is bounded by
// workload.MaxQuerySize, the same cap every other query path enforces.
type Query struct {
	Candidates int
	TopN       int
}

// Reply is the answer to one Query.
type Reply struct {
	// Recs is the TopN ranked recommendations (nil when TopN is 0).
	Recs []model.Ranked
	// Latency is the measured end-to-end query latency.
	Latency time.Duration
	// BatchSize is the per-request batch size the query was split at.
	BatchSize int
}

// Stats is an online snapshot of the service.
type Stats struct {
	// Submitted / Completed / Cancelled are lifetime query counts.
	Submitted uint64
	Completed uint64
	Cancelled uint64
	// BatchSize is the current per-request batch size.
	BatchSize int
	// P50 / P95 are the windowed online latency percentiles.
	P50, P95 time.Duration
	// WindowLen is the number of samples behind the percentiles.
	WindowLen int
	// SLA echoes the configured target (0 = none).
	SLA time.Duration
	// Retunes counts batch-size changes made by the controller.
	Retunes uint64
}

// MeetsSLA reports whether the online p95 is within the target (false when
// no SLA is configured or no sample has been measured).
func (s Stats) MeetsSLA() bool {
	return s.SLA > 0 && s.WindowLen > 0 && s.P95 <= s.SLA
}

// inflight tracks one submitted query across its batch-sized chunks.
type inflight struct {
	topN    int
	pending atomic.Int32 // outstanding chunks; closing done at zero
	skip    atomic.Bool  // cancelled: workers drop remaining work
	done    chan struct{}

	mu   sync.Mutex
	recs []model.Ranked // per-chunk top-N candidates, merged at completion
}

// retire marks one chunk finished, closing done on the last.
func (q *inflight) retire() {
	if q.pending.Add(-1) == 0 {
		close(q.done)
	}
}

// chunk is one batch-sized slice of a query awaiting a worker.
type chunk struct {
	q    *inflight
	base int // global index of the chunk's first candidate
	size int
}

// Service is a live concurrent recommendation server. Create one with New,
// submit queries from any number of goroutines, and Close it to drain.
type Service struct {
	cfg   Config
	tasks chan chunk
	batch atomic.Int64
	win   *stats.Window

	mu       sync.Mutex
	closed   bool
	inFlight sync.WaitGroup // open Submit calls
	workers  sync.WaitGroup

	ctrlStop chan struct{}
	ctrlDone chan struct{}

	submitted atomic.Uint64
	completed atomic.Uint64
	cancelled atomic.Uint64
	retunes   atomic.Uint64
}

// New starts the worker pool (and the controller when configured) and
// returns a running Service.
func New(cfg Config) (*Service, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	s := &Service{
		cfg:   cfg,
		tasks: make(chan chunk, cfg.QueueDepth),
		win:   stats.NewWindow(cfg.WindowSize),
	}
	s.batch.Store(int64(cfg.BatchSize))
	s.workers.Add(cfg.Workers)
	for w := 0; w < cfg.Workers; w++ {
		go s.worker(rand.New(rand.NewSource(cfg.Seed + int64(w))))
	}
	if cfg.AutoTune {
		s.ctrlStop = make(chan struct{})
		s.ctrlDone = make(chan struct{})
		go s.controller()
	}
	return s, nil
}

// worker executes batch-sized chunks: a real forward pass over a fresh
// random input of the chunk's size, then (when the query wants ranked
// output) a per-chunk top-N selection merged at query completion.
func (s *Service) worker(rng *rand.Rand) {
	defer s.workers.Done()
	m := s.cfg.Model
	for c := range s.tasks {
		if c.q.skip.Load() {
			c.q.retire()
			continue
		}
		in := m.NewInput(rng, c.size)
		out := m.Forward(in)
		if n := c.q.topN; n > 0 {
			if n > c.size {
				n = c.size
			}
			ranked := model.RankTopN(out, n)
			for i := range ranked {
				ranked[i].Item += c.base
			}
			c.q.mu.Lock()
			c.q.recs = append(c.q.recs, ranked...)
			c.q.mu.Unlock()
		}
		c.q.retire()
	}
}

// Submit serves one query: it is split into batch-sized requests executed
// by the worker pool, and blocks until the last request completes, the
// context is cancelled, or the service closes. Submit is safe for
// concurrent use from any number of goroutines.
func (s *Service) Submit(ctx context.Context, q Query) (Reply, error) {
	if q.Candidates < 1 || q.Candidates > workload.MaxQuerySize {
		return Reply{}, fmt.Errorf("live: candidates %d outside [1, %d]", q.Candidates, workload.MaxQuerySize)
	}
	if q.TopN < 0 {
		return Reply{}, fmt.Errorf("live: negative TopN %d", q.TopN)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return Reply{}, ErrClosed
	}
	s.inFlight.Add(1)
	s.mu.Unlock()
	defer s.inFlight.Done()
	s.submitted.Add(1)

	batch := int(s.batch.Load())
	nChunks := (q.Candidates + batch - 1) / batch
	iq := &inflight{topN: q.TopN, done: make(chan struct{})}
	iq.pending.Store(int32(nChunks))

	start := time.Now()
	base := 0
	for i := 0; i < nChunks; i++ {
		size := batch
		if rem := q.Candidates - base; size > rem {
			size = rem
		}
		select {
		case s.tasks <- chunk{q: iq, base: base, size: size}:
			base += size
		case <-ctx.Done():
			// Unsent chunks retire here; sent ones retire in workers,
			// which skip their forward pass once the flag is up.
			iq.skip.Store(true)
			for j := i; j < nChunks; j++ {
				iq.retire()
			}
			s.cancelled.Add(1)
			return Reply{}, ctx.Err()
		}
	}

	select {
	case <-iq.done:
	case <-ctx.Done():
		iq.skip.Store(true)
		s.cancelled.Add(1)
		return Reply{}, ctx.Err()
	}

	latency := time.Since(start)
	s.win.Add(latency.Seconds())
	s.completed.Add(1)

	reply := Reply{Latency: latency, BatchSize: batch}
	if q.TopN > 0 {
		reply.Recs = mergeTopN(iq.recs, q.TopN)
	}
	return reply, nil
}

// mergeTopN merges the per-chunk candidate lists into the global top-n.
// Every chunk contributed its own top-min(n, chunkSize), so the global
// top-n is a subset of the union.
func mergeTopN(recs []model.Ranked, n int) []model.Ranked {
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].CTR != recs[j].CTR {
			return recs[i].CTR > recs[j].CTR
		}
		return recs[i].Item < recs[j].Item
	})
	if n > len(recs) {
		n = len(recs)
	}
	return recs[:n]
}

// BatchSize returns the current per-request batch size.
func (s *Service) BatchSize() int { return int(s.batch.Load()) }

// SetBatchSize retunes the per-request batch size for subsequent queries
// (manual counterpart of the AutoTune controller).
func (s *Service) SetBatchSize(b int) error {
	if b < 1 || b > MaxBatchSize {
		return fmt.Errorf("live: batch size %d outside [1, %d]", b, MaxBatchSize)
	}
	s.batch.Store(int64(b))
	return nil
}

// Stats returns an online snapshot.
func (s *Service) Stats() Stats {
	sum := s.win.Summary()
	return Stats{
		Submitted: s.submitted.Load(),
		Completed: s.completed.Load(),
		Cancelled: s.cancelled.Load(),
		BatchSize: s.BatchSize(),
		P50:       time.Duration(sum.P50 * float64(time.Second)),
		P95:       time.Duration(sum.P95 * float64(time.Second)),
		WindowLen: sum.Count,
		SLA:       s.cfg.SLA,
		Retunes:   s.retunes.Load(),
	}
}

// Close stops accepting queries, waits for every in-flight query to
// complete, and shuts down the worker pool and controller. Close is
// idempotent; concurrent Submit calls either finish normally or observe
// ErrClosed.
func (s *Service) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()

	s.inFlight.Wait() // all Submits returned: no more sends on tasks
	close(s.tasks)
	s.workers.Wait()
	if s.ctrlStop != nil {
		close(s.ctrlStop)
		<-s.ctrlDone
	}
	return nil
}
