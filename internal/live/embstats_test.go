package live

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"github.com/deeprecinfra/deeprecsys/internal/embstore"
	"github.com/deeprecinfra/deeprecsys/internal/model"
	"github.com/deeprecinfra/deeprecsys/internal/nn"
	"github.com/deeprecinfra/deeprecsys/internal/workload"
)

// storeModel builds a store-backed test model: synthetic at-scale tables of
// `rows` rows behind an LRU hot-row cache of `cacheRows` rows.
func storeModel(t testing.TB, rows, cacheRows int) *model.Model {
	t.Helper()
	cfg, err := model.ByName("NCF")
	if err != nil {
		t.Fatal(err)
	}
	cfg, err = cfg.WithTableScale(rows, 0)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := embstore.ParseSpec(fmt.Sprintf("synth,cache=lru:%d", cacheRows))
	if err != nil {
		t.Fatal(err)
	}
	cfg.Tables = func(table, rws, dim int, _ *rand.Rand, sd int64) (nn.RowStore, error) {
		return sp.Open(sd, table, rws, dim, embstore.Shard{})
	}
	m, err := model.New(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })
	return m
}

// A store-backed service surfaces the embedding-tier counters through its
// online snapshot; a classic in-memory service reports none.
func TestStoreBackedServiceReportsEmbStats(t *testing.T) {
	s := newService(t, Config{
		Model:     storeModel(t, 20000, 500),
		Workers:   2,
		BatchSize: 32,
		Access:    workload.ZipfAccess{S: 1.3, V: 1},
	})
	for i := 0; i < 30; i++ {
		if _, err := s.Submit(context.Background(), Query{Candidates: 32, TopN: 4}); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if !st.EmbStore {
		t.Fatal("store-backed service reports EmbStore=false")
	}
	lookups := st.EmbHits + st.EmbMisses
	if lookups == 0 {
		t.Fatal("no embedding lookups counted")
	}
	if st.EmbMisses == 0 {
		t.Error("cold cache recorded zero misses")
	}
	if st.EmbBytesRead == 0 {
		t.Error("backing-store reads recorded zero bytes")
	}
	if st.EmbHitRate < 0 || st.EmbHitRate > 1 {
		t.Errorf("hit rate %v outside [0,1]", st.EmbHitRate)
	}

	classic := newService(t, Config{Workers: 1, BatchSize: 8})
	if _, err := classic.Submit(context.Background(), Query{Candidates: 8}); err != nil {
		t.Fatal(err)
	}
	if cst := classic.Stats(); cst.EmbStore || cst.EmbHits+cst.EmbMisses != 0 {
		t.Errorf("classic in-memory service reports embedding stats: %+v", cst)
	}
}

// Skewed access must make the hot-row cache effective: at the same cache
// size, Zipf traffic yields a strictly higher hit rate than uniform.
func TestZipfAccessBeatsUniformHitRate(t *testing.T) {
	run := func(access workload.IndexDist) float64 {
		s := newService(t, Config{
			Model:     storeModel(t, 50000, 2000),
			Workers:   2,
			BatchSize: 32,
			Access:    access,
		})
		for i := 0; i < 40; i++ {
			if _, err := s.Submit(context.Background(), Query{Candidates: 64}); err != nil {
				t.Fatal(err)
			}
		}
		st := s.Stats()
		if st.EmbHits+st.EmbMisses == 0 {
			t.Fatal("no lookups counted")
		}
		return st.EmbHitRate
	}
	zipf := run(workload.ZipfAccess{S: 1.5, V: 1})
	uniform := run(nil)
	if zipf <= uniform {
		t.Errorf("zipf hit rate %.3f not above uniform %.3f", zipf, uniform)
	}
	if zipf < 0.5 {
		t.Errorf("zipf(1.5) hit rate %.3f implausibly low for a 4%% cache", zipf)
	}
}

// Explicit uniform access must be indistinguishable from the nil default:
// withDefaults strips it to the nil-sampler fast path, so the per-worker
// draw streams — and therefore the ranked outputs — are identical.
func TestUniformAccessMatchesNilAccess(t *testing.T) {
	m := testModel(t) // shared: weights are read-only under Submit
	run := func(access workload.IndexDist) [][]model.Ranked {
		s := newService(t, Config{Model: m, Workers: 1, BatchSize: 64, Seed: 9, Access: access})
		var out [][]model.Ranked
		for i := 0; i < 8; i++ {
			r, err := s.Submit(context.Background(), Query{Candidates: 48, TopN: 5})
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, r.Recs)
		}
		return out
	}
	want := run(nil)
	got := run(workload.UniformAccess{})
	for q := range want {
		if len(want[q]) != len(got[q]) {
			t.Fatalf("query %d: %d recs vs %d", q, len(want[q]), len(got[q]))
		}
		for k := range want[q] {
			if want[q][k] != got[q][k] {
				t.Fatalf("query %d rec %d: %+v vs %+v", q, k, want[q][k], got[q][k])
			}
		}
	}
}
