package live

import (
	"context"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"github.com/deeprecinfra/deeprecsys/internal/model"
	"github.com/deeprecinfra/deeprecsys/internal/platform"
	"github.com/deeprecinfra/deeprecsys/internal/workload"
)

// indexSampler binds one worker's rng to the configured sparse-access
// distribution, caching one source per table geometry: the degrade fallback
// model (and a sharded store) can serve a different row count than the
// service model, and a Zipf source is bound to its range at construction.
// A nil sampler (or a model without tables) yields a nil source, which
// NewInputSampled treats as the exact legacy rng.Intn path.
type indexSampler struct {
	dist workload.IndexDist
	rng  *rand.Rand
	srcs map[int]model.IndexSource
}

func newIndexSampler(dist workload.IndexDist, rng *rand.Rand) *indexSampler {
	if dist == nil {
		return nil
	}
	return &indexSampler{dist: dist, rng: rng, srcs: make(map[int]model.IndexSource)}
}

// source returns the sampler's IndexSource for m's table geometry.
func (is *indexSampler) source(m *model.Model) model.IndexSource {
	if is == nil {
		return nil
	}
	rows := m.TableRows()
	if rows <= 0 {
		return nil
	}
	src, ok := is.srcs[rows]
	if !ok {
		src = is.dist.Source(is.rng, rows)
		is.srcs[rows] = src
	}
	return src
}

// Executor is one execution lane of a live Service. The service routes each
// accepted query to exactly one lane: the CPU pool splits it into
// batch-sized requests executed as real forward passes, while the
// accelerator lane takes it whole — the heterogeneous split DeepRecSched's
// threshold knob controls. A lane owns the query from Enqueue until it
// retires the last unit of work on the inflight tracker (closing iq.done);
// cancellation is cooperative through the tracker's skip flag.
type Executor interface {
	// Enqueue admits one whole query of the given size to the lane. It
	// blocks while the lane's admission is at capacity, honoring ctx: on
	// cancellation it unwinds the query's outstanding work and returns
	// ctx.Err(). On success the query's completion is signalled through
	// iq.done.
	Enqueue(ctx context.Context, iq *inflight, size int) error
	// Close drains the lane: it returns only after every admitted query has
	// retired. Callers must guarantee no Enqueue call is in flight.
	Close()
}

// cpuPool is the CPU lane: a fixed worker pool executing batch-sized chunks
// of each query as real model forward passes. The lane is shared by every
// tenant; the per-request batch size is read per query from the serving
// tenant's live knob, so controller retunes take effect on the next
// submission.
//
// Each worker owns its model.Scratch (plus intraOp-1 more when intra-query
// splitting is enabled), so steady-state forward passes allocate nothing;
// scratches are never shared across workers — the race-enabled live tests
// pin that ownership rule. Scratches are model-agnostic (NewInputInto
// re-derives shapes per call), so the one scratch set serves every tenant's
// model — the "multiple per-tenant model scratch sets behind one lane pair"
// is one arena re-shaped per chunk, not N arenas.
type cpuPool struct {
	tenants []*tenant
	scale   *atomicScale // live service-time stretch; the CPU lane only slows (>= 1 effective)
	intraOp int          // goroutines a big chunk's forward pass may fan out to
	tasks   chan chunk
	wg      sync.WaitGroup
}

// newCPUPool starts the worker pool.
func newCPUPool(tenants []*tenant, workers, queueDepth int, seed int64, scale *atomicScale, intraOp int) *cpuPool {
	p := &cpuPool{tenants: tenants, scale: scale, intraOp: intraOp, tasks: make(chan chunk, queueDepth)}
	p.wg.Add(workers)
	for w := 0; w < workers; w++ {
		go p.worker(rand.New(rand.NewSource(seed + int64(w))))
	}
	return p
}

// worker executes batch-sized chunks: a real forward pass over a fresh
// random input of the chunk's size, then (when the query wants ranked
// output) a per-chunk top-N selection merged at query completion.
func (p *cpuPool) worker(rng *rand.Rand) {
	defer p.wg.Done()
	scratches := make([]*model.Scratch, p.intraOp)
	for i := range scratches {
		scratches[i] = model.NewScratch()
	}
	// One sampler per tenant, all bound to this worker's rng: each tenant
	// keeps its own access distribution while the worker's draw sequence
	// stays deterministic under Seed. A tenant with uniform access has a
	// nil sampler (the legacy rng.Intn fast path).
	samplers := make([]*indexSampler, len(p.tenants))
	for i, t := range p.tenants {
		samplers[i] = newIndexSampler(t.access, rng)
	}
	for c := range p.tasks {
		if c.q.skip.Load() {
			c.q.retire()
			continue
		}
		// The chunk executes its query's model — the serving tenant's, or
		// its fallback variant under deep degradation.
		t := c.q.tn
		if t == nil {
			t = p.tenants[0]
		}
		m := c.q.m
		if m == nil {
			m = t.model
		}
		start := time.Now()
		in := m.NewInputSampled(scratches[0], rng, c.size, samplers[t.idx].source(m))
		// With IntraOp > 1, big-batch chunks split across the par pool for
		// intra-query parallelism (bit-identical results).
		out := m.ForwardMaybeSplit(scratches, in)
		// Per-node heterogeneity: a slow node stretches real execution
		// proportionally. Forward passes cannot be sped up, so factors
		// below 1 yield no pad and the lane floors at real speed. The factor
		// is read per chunk so chaos slowdown injection applies immediately.
		if pad := time.Duration(float64(time.Since(start)) * (p.scale.Load() - 1)); pad > 0 {
			time.Sleep(pad)
		}
		if n := c.q.topN; n > 0 {
			if n > c.size {
				n = c.size
			}
			ranked := model.RankTopN(out, n)
			for i := range ranked {
				ranked[i].Item += c.base
			}
			c.q.mu.Lock()
			c.q.recs = append(c.q.recs, ranked...)
			c.q.mu.Unlock()
		}
		c.q.retire()
	}
}

// Enqueue implements Executor: the query is split into batch-sized chunks
// pushed onto the bounded task queue.
func (p *cpuPool) Enqueue(ctx context.Context, iq *inflight, size int) error {
	t := iq.tn
	if t == nil {
		t = p.tenants[0]
	}
	batch := int(t.batch.Load())
	iq.batch = batch
	nChunks := (size + batch - 1) / batch
	iq.pending.Store(int32(nChunks))
	base := 0
	for i := 0; i < nChunks; i++ {
		csize := batch
		if rem := size - base; csize > rem {
			csize = rem
		}
		select {
		case p.tasks <- chunk{q: iq, base: base, size: csize}:
			base += csize
		case <-ctx.Done():
			// Unsent chunks retire here; sent ones retire in workers,
			// which skip their forward pass once the flag is up.
			iq.skip.Store(true)
			for j := i; j < nChunks; j++ {
				iq.retire()
			}
			return ctx.Err()
		}
	}
	return nil
}

// Close implements Executor.
func (p *cpuPool) Close() {
	close(p.tasks)
	p.wg.Wait()
}

// accelerator is the offload lane: a modeled GPU-class device that serves
// whole queries (no batch splitting — the device's internal parallelism
// plays the role request parallelism plays on the host) for the modeled
// service time platform.GPU.QueryTime, with at most Streams queries in
// flight. It is the live analogue of kickGPU in the offline simulator: the
// device queue is unbounded, realized as one goroutine per admitted query
// waiting on a stream slot, with Submit's completion wait providing the
// backpressure.
type accelerator struct {
	tn      *tenant // default tenant (0): serves untagged queries
	gpu     *platform.GPU
	profile model.Profile // tenant 0's profile; per-query time uses the serving tenant's
	scale   *atomicScale  // live service-time stretch on the modeled device time
	slots   chan struct{} // one token per concurrent device stream
	seq     atomic.Int64  // per-query seed stream for ranked offloads
	seed    int64
	scratch sync.Pool // *model.Scratch for ranked offloads (one per active stream)
	wg      sync.WaitGroup
}

// newAccelerator builds the lane, shared by every tenant. The modeled
// service time of each query is computed from the serving tenant's own
// model profile, so an FC-heavy tenant and an embedding-heavy tenant
// occupying the same device streams cost what their architectures cost.
func newAccelerator(t *tenant, gpu *platform.GPU, seed int64, scale *atomicScale) *accelerator {
	streams := gpu.Streams
	if streams < 1 {
		streams = 1
	}
	a := &accelerator{
		tn:      t,
		gpu:     gpu,
		profile: t.profile,
		scale:   scale,
		slots:   make(chan struct{}, streams),
		seed:    seed,
	}
	a.scratch.New = func() any { return model.NewScratch() }
	return a
}

// Enqueue implements Executor. Admission never blocks — the device queue is
// unbounded, like the simulator's gpuQueue — so the only cancellation
// observable here is a context that is already done.
func (a *accelerator) Enqueue(ctx context.Context, iq *inflight, size int) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	iq.batch = size // offloaded whole: one device request of the full size
	iq.pending.Store(1)
	a.wg.Add(1)
	go a.run(iq, size)
	return nil
}

// run models one device-side query: it occupies a stream slot for the
// modeled service time. When ranked output was requested the forward pass
// runs host-side inside the slot — the model stands in for the device's
// arithmetic — and the wait is padded up to the modeled time, so that
// latency-only load (TopN 0, the capacity scenario) is a pure modeled wait
// and ranked queries still return real recommendations.
func (a *accelerator) run(iq *inflight, size int) {
	defer a.wg.Done()
	if iq.skip.Load() {
		iq.retire() // cancelled while queued: take no slot at all
		return
	}
	a.slots <- struct{}{} // wait for a free stream
	defer func() { <-a.slots }()
	if iq.skip.Load() {
		iq.retire() // cancelled during the wait: consume no device time
		return
	}
	t := iq.tn
	if t == nil {
		t = a.tn
	}
	service := time.Duration(float64(a.gpu.QueryTime(t.profile, size)) * a.scale.Load())
	start := time.Now()
	if n := iq.topN; n > 0 {
		m := iq.m
		if m == nil {
			m = t.model
		}
		rng := rand.New(rand.NewSource(a.seed + a.seq.Add(1)))
		s := a.scratch.Get().(*model.Scratch)
		// Ranked offloads bind one fresh source per query — the per-query
		// rng is fresh too, so the draw sequence stays deterministic.
		out := m.ForwardInto(s, m.NewInputSampled(s, rng, size, newIndexSampler(t.access, rng).source(m)))
		if n > size {
			n = size
		}
		iq.mu.Lock()
		iq.recs = append(iq.recs, model.RankTopN(out, n)...)
		iq.mu.Unlock()
		a.scratch.Put(s)
	}
	if rem := service - time.Since(start); rem > 0 {
		time.Sleep(rem)
	}
	iq.retire()
}

// saturated reports whether every device stream is currently occupied — the
// controller's signal that lowering the threshold further would only deepen
// the device queue, not add parallelism. Occupancy, not queued demand, is
// the signal: cancelled queries waiting in the queue hold no stream and
// will consume no device time, so they must not read as load.
func (a *accelerator) saturated() bool {
	return len(a.slots) == cap(a.slots)
}

// Close implements Executor.
func (a *accelerator) Close() { a.wg.Wait() }
