package live

import (
	"context"
	"math"
	"sync"
	"testing"
	"time"

	"github.com/deeprecinfra/deeprecsys/internal/platform"
	"github.com/deeprecinfra/deeprecsys/internal/workload"
)

// testGPU returns a fast accelerator model for offload-lane tests: fixed
// setup in the tens of microseconds and effectively infinite bandwidth, so
// modeled service times stay far below test timeouts.
func testGPU(streams int) *platform.GPU {
	return &platform.GPU{
		Name:           "test-accel",
		TDPWatts:       100,
		IdleWatts:      10,
		Streams:        streams,
		SetupTime:      50 * time.Microsecond,
		PCIeGBs:        1000,
		PeakGFLOPs:     1e6,
		KernelHalfSize: 1,
		AttnEff:        1,
		GRUGFLOPs:      1e6,
		GatherGBs:      1000,
	}
}

func TestOffloadConfigValidation(t *testing.T) {
	m := testModel(t)
	bad := []Config{
		{Model: m, GPUThreshold: 5}, // threshold without an accelerator
		{Model: m, GPUThreshold: -1, GPU: testGPU(1)},
		{Model: m, GPUThreshold: workload.MaxQuerySize + 1, GPU: testGPU(1)},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("bad offload config %d accepted: %+v", i, cfg)
		}
	}
}

// TestThresholdBoundaryOffloadsWhole pins the routing rule: a query of
// exactly the threshold size is offloaded, whole (no batch splitting), and
// one below it is batched onto the CPU pool.
func TestThresholdBoundaryOffloadsWhole(t *testing.T) {
	s := newService(t, Config{Workers: 1, BatchSize: 16, GPU: testGPU(2), GPUThreshold: 100})
	ctx := context.Background()

	below, err := s.Submit(ctx, Query{Candidates: 99, TopN: 2})
	if err != nil {
		t.Fatal(err)
	}
	if below.Offloaded || below.BatchSize != 16 {
		t.Errorf("size 99 under threshold 100: offloaded=%v batch=%d, want CPU lane at batch 16",
			below.Offloaded, below.BatchSize)
	}
	at, err := s.Submit(ctx, Query{Candidates: 100, TopN: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !at.Offloaded || at.BatchSize != 100 {
		t.Errorf("size 100 at threshold 100: offloaded=%v batch=%d, want whole-query offload",
			at.Offloaded, at.BatchSize)
	}
	if len(at.Recs) != 2 {
		t.Fatalf("offloaded query returned %d recs, want 2", len(at.Recs))
	}
	for _, r := range at.Recs {
		if r.Item < 0 || r.Item >= 100 {
			t.Errorf("offloaded rec item %d outside candidate set", r.Item)
		}
	}
	// The modeled service time bounds the offloaded latency from below.
	if want := testGPU(2).QueryTime(s.acc.profile, 100); at.Latency < want {
		t.Errorf("offloaded latency %v below modeled service time %v", at.Latency, want)
	}
}

// TestStatsGPUShares checks the offload accounting: query share counts
// queries, work share counts candidate items.
func TestStatsGPUShares(t *testing.T) {
	s := newService(t, Config{Workers: 1, BatchSize: 32, GPU: testGPU(2), GPUThreshold: 150})
	ctx := context.Background()
	for _, size := range []int{50, 50, 50, 200} {
		if _, err := s.Submit(ctx, Query{Candidates: size}); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.GPUThreshold != 150 {
		t.Errorf("GPUThreshold = %d, want 150", st.GPUThreshold)
	}
	if st.GPUQueries != 1 {
		t.Errorf("GPUQueries = %d, want 1", st.GPUQueries)
	}
	if want := 0.25; math.Abs(st.GPUQueryShare-want) > 1e-9 {
		t.Errorf("GPUQueryShare = %v, want %v", st.GPUQueryShare, want)
	}
	if want := 200.0 / 350.0; math.Abs(st.GPUWorkShare-want) > 1e-9 {
		t.Errorf("GPUWorkShare = %v, want %v", st.GPUWorkShare, want)
	}
	if st.Completed != 4 {
		t.Errorf("Completed = %d, want 4", st.Completed)
	}
}

func TestSetGPUThreshold(t *testing.T) {
	cpuOnly := newService(t, Config{Workers: 1})
	if err := cpuOnly.SetGPUThreshold(10); err == nil {
		t.Error("SetGPUThreshold accepted on a CPU-only service")
	}

	s := newService(t, Config{Workers: 1, BatchSize: 8, GPU: testGPU(1)})
	if err := s.SetGPUThreshold(-1); err == nil {
		t.Error("negative threshold accepted")
	}
	if err := s.SetGPUThreshold(workload.MaxQuerySize + 1); err == nil {
		t.Error("oversized threshold accepted")
	}
	if err := s.SetGPUThreshold(20); err != nil || s.GPUThreshold() != 20 {
		t.Fatalf("SetGPUThreshold(20): %v, threshold %d", err, s.GPUThreshold())
	}
	r, err := s.Submit(context.Background(), Query{Candidates: 30})
	if err != nil || !r.Offloaded {
		t.Errorf("size 30 over threshold 20: err=%v offloaded=%v", err, r.Offloaded)
	}
	if err := s.SetGPUThreshold(0); err != nil {
		t.Fatal(err)
	}
	r, err = s.Submit(context.Background(), Query{Candidates: 30})
	if err != nil || r.Offloaded {
		t.Errorf("threshold 0 must disable offload: err=%v offloaded=%v", err, r.Offloaded)
	}
}

// TestOffloadCancelledAtAdmission pins the Executor contract on the
// accelerator lane: an already-cancelled context is refused at Enqueue with
// ctx.Err(), counted as cancelled, and spawns no device work.
func TestOffloadCancelledAtAdmission(t *testing.T) {
	s := newService(t, Config{Workers: 1, BatchSize: 8, GPU: testGPU(1), GPUThreshold: 1})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Submit(ctx, Query{Candidates: 10}); err != context.Canceled {
		t.Fatalf("Submit with cancelled ctx = %v, want context.Canceled", err)
	}
	st := s.Stats()
	if st.Cancelled != 1 || st.Completed != 0 {
		t.Errorf("stats = %+v, want 1 cancelled / 0 completed", st)
	}
}

// TestStreamsBoundConcurrentOffloads saturates a single-stream accelerator
// and checks queries serialize on the modeled device: total wall time is at
// least n times the modeled per-query service.
func TestStreamsBoundConcurrentOffloads(t *testing.T) {
	gpu := testGPU(1)
	s := newService(t, Config{Workers: 1, BatchSize: 8, GPU: gpu, GPUThreshold: 1})
	const n = 4
	per := gpu.QueryTime(s.acc.profile, 10)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := s.Submit(context.Background(), Query{Candidates: 10}); err != nil {
				t.Errorf("Submit: %v", err)
			}
		}()
	}
	wg.Wait()
	if elapsed := time.Since(start); elapsed < time.Duration(n)*per {
		t.Errorf("%d offloads on 1 stream took %v, want >= %v (serialized)", n, elapsed, time.Duration(n)*per)
	}
	if st := s.Stats(); st.GPUQueries != n || st.Completed != n {
		t.Errorf("stats = %+v, want %d offloaded/completed", st, n)
	}
}

// TestOffloadRaceMixed hammers a two-lane service from many goroutines with
// sizes straddling the threshold while AutoTune walks both knobs and a
// manual tuner concurrently moves them too; -race covers the
// synchronization, the assertions cover the accounting.
func TestOffloadRaceMixed(t *testing.T) {
	s := newService(t, Config{
		Workers: 2, BatchSize: 16, WindowSize: 256,
		GPU: testGPU(2), GPUThreshold: 60,
		SLA: 50 * time.Millisecond, AutoTune: true, TuneInterval: 5 * time.Millisecond,
	})
	const goroutines, perG = 6, 10
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				size := 10 + (g*perG+i)%120 // straddles the initial threshold
				if _, err := s.Submit(context.Background(), Query{Candidates: size, TopN: 2}); err != nil {
					t.Errorf("Submit(%d): %v", size, err)
					return
				}
			}
		}(g)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; ; i++ {
			select {
			case <-time.After(time.Millisecond):
				s.SetBatchSize(8 + i%32)
				s.SetGPUThreshold(40 + i%80)
			case <-done:
				return
			}
		}
	}()
	wg.Wait()
	done <- struct{}{}
	<-done

	st := s.Stats()
	if st.Completed != goroutines*perG {
		t.Errorf("completed %d, want %d", st.Completed, goroutines*perG)
	}
	if st.GPUQueries == 0 || st.GPUQueries == st.Completed {
		t.Errorf("mixed load should split lanes: %d/%d offloaded", st.GPUQueries, st.Completed)
	}
	if st.GPUQueryShare <= 0 || st.GPUQueryShare >= 1 || st.GPUWorkShare <= 0 || st.GPUWorkShare >= 1 {
		t.Errorf("shares outside (0,1): %+v", st)
	}
}

// TestAwaitQueryPrefersCompletion pins the completion/cancellation race
// fix: when the query's done channel and the context are both ready, the
// completion must win — the work was fully executed, and reporting it
// cancelled would drop its latency sample and skew the counters. The old
// two-way select picked randomly, so 200 iterations catch a regression
// with overwhelming probability.
func TestAwaitQueryPrefersCompletion(t *testing.T) {
	s := newService(t, Config{Workers: 1})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for i := 0; i < 200; i++ {
		iq := &inflight{done: make(chan struct{})}
		iq.pending.Store(1)
		iq.retire() // fully completed before the wait begins
		if err := s.awaitQuery(ctx, iq); err != nil {
			t.Fatalf("iteration %d: completed query reported cancelled: %v", i, err)
		}
	}
}

// TestAutoTuneWalksBothKnobs drives a two-lane service against an
// unmeetable SLA and checks the controller alternates: the batch size
// steps down for request parallelism and the threshold steps down from
// "off" to pull the heavy tail onto the accelerator.
func TestAutoTuneWalksBothKnobs(t *testing.T) {
	s := newService(t, Config{
		Workers: 2, BatchSize: 256, WindowSize: 256,
		GPU:      testGPU(2), // threshold 0: offload starts disabled
		SLA:      time.Nanosecond,
		AutoTune: true, TuneInterval: 10 * time.Millisecond,
	})
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if _, err := s.Submit(context.Background(), Query{Candidates: 16}); err != nil {
			t.Fatal(err)
		}
		if s.Stats().Retunes >= 2 {
			break
		}
	}
	st := s.Stats()
	if st.Retunes < 2 {
		t.Fatalf("controller made %d moves, want >= 2", st.Retunes)
	}
	if st.BatchSize >= 256 {
		t.Errorf("batch never stepped down: %+v", st)
	}
	if st.GPUThreshold == 0 || st.GPUThreshold > workload.MaxQuerySize {
		t.Errorf("threshold never stepped in from off: %+v", st)
	}
}

// TestAutoTuneRelaxesThresholdUnderHeadroom checks the opposite walk: with
// a bottomless SLA the controller raises the threshold back toward the CPU
// pool (and off the accelerator entirely at the top of the ladder).
func TestAutoTuneRelaxesThresholdUnderHeadroom(t *testing.T) {
	s := newService(t, Config{
		Workers: 2, BatchSize: 1, WindowSize: 256,
		GPU: testGPU(2), GPUThreshold: 64,
		SLA: time.Hour, AutoTune: true, TuneInterval: 10 * time.Millisecond,
	})
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if _, err := s.Submit(context.Background(), Query{Candidates: 8}); err != nil {
			t.Fatal(err)
		}
		if s.Stats().Retunes >= 2 {
			break
		}
	}
	st := s.Stats()
	if st.Retunes < 2 {
		t.Fatalf("controller made %d moves, want >= 2", st.Retunes)
	}
	if st.BatchSize <= 1 {
		t.Errorf("batch never stepped up: %+v", st)
	}
	if st.GPUThreshold != 0 && st.GPUThreshold <= 64 {
		t.Errorf("threshold never relaxed above 64: %+v", st)
	}
}
