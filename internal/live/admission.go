package live

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"

	"github.com/deeprecinfra/deeprecsys/internal/workload"
)

// ErrOverloaded is returned by Submit when admission control sheds the
// query: the service is saturated and the policy chose to refuse new work
// rather than let the backlog (and the tail latency of every admitted
// query) grow without bound. Callers should treat it as a retryable
// load-shedding signal, not a failure of the service.
var ErrOverloaded = errors.New("live: overloaded: admission control shed the query")

// ErrShutdown is returned by Submit for queries that were queued by
// admission control but never started executing when Close began. It is
// distinct from ErrClosed (submitted after Close) so callers can tell
// "never accepted" from "accepted but abandoned at shutdown".
var ErrShutdown = errors.New("live: service closed before the query started executing")

// AdmissionPolicy selects what happens to a query that arrives while the
// service is already executing its configured concurrency of queries.
type AdmissionPolicy int

const (
	// AdmitAll disables admission control: every query proceeds straight
	// to an executor lane (the pre-admission behavior; backpressure comes
	// only from the lane queues).
	AdmitAll AdmissionPolicy = iota
	// AdmitReject sheds a query immediately with ErrOverloaded when all
	// execution slots are busy.
	AdmitReject
	// AdmitQueue parks the query in a bounded FIFO admission queue; when
	// the queue is full the new query is shed with ErrOverloaded.
	AdmitQueue
	// AdmitShedOldest parks the query in the bounded FIFO queue; when the
	// queue is full the oldest waiting query is shed (its Submit returns
	// ErrOverloaded) to make room for the newest — freshest-first service,
	// the right policy when queries carry deadlines.
	AdmitShedOldest
)

// String returns the policy's spec-grammar name.
func (p AdmissionPolicy) String() string {
	switch p {
	case AdmitAll:
		return "none"
	case AdmitReject:
		return "reject"
	case AdmitQueue:
		return "queue"
	case AdmitShedOldest:
		return "shed-oldest"
	default:
		return fmt.Sprintf("AdmissionPolicy(%d)", int(p))
	}
}

// AdmissionConfig bounds the work a Service accepts. The zero value
// disables admission control.
type AdmissionConfig struct {
	// Policy is the full-queue behavior.
	Policy AdmissionPolicy
	// Concurrency is the maximum number of queries executing in the lanes
	// at once (default 2× Workers). Arrivals beyond it hit the Policy.
	Concurrency int
	// Depth bounds the admission queue for AdmitQueue / AdmitShedOldest
	// (default 4× Concurrency; ignored for AdmitReject).
	Depth int
}

// ParseAdmission parses an admission spec as accepted by
// `deeprecsys serve -admission`:
//
//	none                 admission control off (the default)
//	reject               shed new queries at saturation
//	queue:<depth>        bounded FIFO; shed new queries when full
//	shed-oldest[:<depth>] bounded FIFO; shed the oldest waiter when full
//	                     (depth defaults to 4× the concurrency limit)
func ParseAdmission(spec string) (AdmissionConfig, error) {
	name, arg, hasArg := strings.Cut(spec, ":")
	switch name {
	case "", "none":
		if hasArg {
			return AdmissionConfig{}, fmt.Errorf("live: admission policy none takes no parameter (got %q)", spec)
		}
		return AdmissionConfig{}, nil
	case "reject":
		if hasArg {
			return AdmissionConfig{}, fmt.Errorf("live: admission policy reject takes no parameter (got %q)", spec)
		}
		return AdmissionConfig{Policy: AdmitReject}, nil
	case "queue":
		if !hasArg {
			return AdmissionConfig{}, errors.New("live: admission policy queue needs a depth (want queue:<depth>)")
		}
		depth, err := strconv.Atoi(arg)
		if err != nil || depth < 1 {
			return AdmissionConfig{}, fmt.Errorf("live: admission queue depth %q must be a positive integer", arg)
		}
		return AdmissionConfig{Policy: AdmitQueue, Depth: depth}, nil
	case "shed-oldest":
		cfg := AdmissionConfig{Policy: AdmitShedOldest}
		if hasArg {
			depth, err := strconv.Atoi(arg)
			if err != nil || depth < 1 {
				return AdmissionConfig{}, fmt.Errorf("live: admission queue depth %q must be a positive integer", arg)
			}
			cfg.Depth = depth
		}
		return cfg, nil
	default:
		return AdmissionConfig{}, workload.UnknownSpec("live", "admission policy", spec, "none", "reject", "queue:<depth>", "shed-oldest[:<depth>]")
	}
}

// admWaiter is one query parked in the admission queue. Its Submit
// goroutine blocks on ready; the gate delivers exactly one verdict: nil
// (admitted — an execution slot was transferred to it) or a terminal error
// (shed, shut down, or replica failure).
type admWaiter struct {
	ready chan error
}

// admission is the gate in front of the executor lanes: at most limit
// queries execute concurrently, and the policy decides the fate of
// arrivals beyond that. It exists per Service (one per fleet replica), so
// a fleet sheds load at each replica's own saturation point.
type admission struct {
	policy AdmissionPolicy
	limit  int
	depth  int

	mu     sync.Mutex
	inExec int
	queue  []*admWaiter
	closed bool
	errAt  error // verdict delivered to waiters at close/fail time

	// shed / evicted are reported back through the Service's counters;
	// the gate itself only signals outcomes through waiter verdicts and
	// admit return values.
}

func newAdmission(cfg AdmissionConfig) *admission {
	return &admission{policy: cfg.Policy, limit: cfg.Concurrency, depth: cfg.Depth}
}

// admit blocks until the query may execute, honoring ctx while queued.
// The returned evicted count is the number of other waiters this arrival
// displaced (AdmitShedOldest only). On nil error the caller owns one
// execution slot and must release() it when the query leaves the lanes.
func (a *admission) admit(ctx context.Context) (evicted int, err error) {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return 0, a.errAt
	}
	if a.inExec < a.limit {
		a.inExec++
		a.mu.Unlock()
		return 0, nil
	}
	switch a.policy {
	case AdmitReject:
		a.mu.Unlock()
		return 0, ErrOverloaded
	case AdmitQueue:
		if len(a.queue) >= a.depth {
			a.mu.Unlock()
			return 0, ErrOverloaded
		}
	case AdmitShedOldest:
		for len(a.queue) >= a.depth {
			oldest := a.queue[0]
			a.queue = a.queue[1:]
			oldest.ready <- ErrOverloaded
			evicted++
		}
	}
	w := &admWaiter{ready: make(chan error, 1)}
	a.queue = append(a.queue, w)
	a.mu.Unlock()

	select {
	case err := <-w.ready:
		return evicted, err
	case <-ctx.Done():
		// Deadline or cancellation while queued: leave the queue. The
		// grant may already be in flight, in which case the slot was
		// transferred to us and must be handed back.
		a.mu.Lock()
		for i, q := range a.queue {
			if q == w {
				a.queue = append(a.queue[:i], a.queue[i+1:]...)
				a.mu.Unlock()
				return evicted, ctx.Err()
			}
		}
		a.mu.Unlock()
		if err := <-w.ready; err == nil {
			a.release()
		}
		return evicted, ctx.Err()
	}
}

// release returns an execution slot, transferring it to the oldest waiter
// if one is parked.
func (a *admission) release() {
	a.mu.Lock()
	if len(a.queue) > 0 {
		w := a.queue[0]
		a.queue = a.queue[1:]
		a.mu.Unlock()
		w.ready <- nil // slot transferred: inExec unchanged
		return
	}
	a.inExec--
	a.mu.Unlock()
}

// shutdown delivers verdict to every parked waiter and makes future admit
// calls fail with it immediately: ErrShutdown at Close (queued-but-
// unstarted queries must not block behind the backlog), ErrReplicaDown at
// Fail. It returns the number of waiters flushed.
func (a *admission) shutdown(verdict error) int {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return 0
	}
	a.closed = true
	a.errAt = verdict
	flushed := a.queue
	a.queue = nil
	a.mu.Unlock()
	for _, w := range flushed {
		w.ready <- verdict
	}
	return len(flushed)
}

// queued returns the current admission-queue length.
func (a *admission) queued() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.queue)
}
