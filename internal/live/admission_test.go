package live

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"github.com/deeprecinfra/deeprecsys/internal/model"
)

func TestParseAdmissionSpecs(t *testing.T) {
	good := map[string]AdmissionConfig{
		"":               {},
		"none":           {},
		"reject":         {Policy: AdmitReject},
		"queue:8":        {Policy: AdmitQueue, Depth: 8},
		"shed-oldest":    {Policy: AdmitShedOldest},
		"shed-oldest:16": {Policy: AdmitShedOldest, Depth: 16},
	}
	for spec, want := range good {
		got, err := ParseAdmission(spec)
		if err != nil {
			t.Errorf("%q rejected: %v", spec, err)
			continue
		}
		if got != want {
			t.Errorf("%q parsed to %+v, want %+v", spec, got, want)
		}
	}
	bad := []string{"none:1", "reject:2", "queue", "queue:0", "queue:-1", "queue:x", "shed-oldest:0", "lifo"}
	for _, spec := range bad {
		if _, err := ParseAdmission(spec); err == nil {
			t.Errorf("%q accepted", spec)
		}
	}
}

// --- Gate-level tests: the admission mechanics without a service. ---

func TestAdmissionRejectAtSaturation(t *testing.T) {
	a := newAdmission(AdmissionConfig{Policy: AdmitReject, Concurrency: 2, Depth: 1})
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		if _, err := a.admit(ctx); err != nil {
			t.Fatalf("admit %d under capacity: %v", i, err)
		}
	}
	if _, err := a.admit(ctx); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("admit at saturation = %v, want ErrOverloaded", err)
	}
	a.release()
	if _, err := a.admit(ctx); err != nil {
		t.Fatalf("admit after release: %v", err)
	}
}

func TestAdmissionQueueTransfersSlot(t *testing.T) {
	a := newAdmission(AdmissionConfig{Policy: AdmitQueue, Concurrency: 1, Depth: 2})
	ctx := context.Background()
	if _, err := a.admit(ctx); err != nil {
		t.Fatal(err)
	}
	admitted := make(chan error, 1)
	go func() {
		_, err := a.admit(ctx)
		admitted <- err
	}()
	waitFor(t, func() bool { return a.queued() == 1 })
	a.release() // transfers the slot to the waiter
	if err := <-admitted; err != nil {
		t.Fatalf("queued admit after release: %v", err)
	}
	// The slot moved, it was not freed: a third arrival still queues.
	done := make(chan struct{})
	go func() {
		a.admit(ctx)
		close(done)
	}()
	waitFor(t, func() bool { return a.queued() == 1 })
	a.release()
	<-done
}

func TestAdmissionQueueFullSheds(t *testing.T) {
	a := newAdmission(AdmissionConfig{Policy: AdmitQueue, Concurrency: 1, Depth: 1})
	ctx := context.Background()
	a.admit(ctx)
	go a.admit(ctx) // parks in the queue
	waitFor(t, func() bool { return a.queued() == 1 })
	if _, err := a.admit(ctx); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("admit with full queue = %v, want ErrOverloaded", err)
	}
	a.shutdown(ErrShutdown)
}

func TestAdmissionShedOldestEvicts(t *testing.T) {
	a := newAdmission(AdmissionConfig{Policy: AdmitShedOldest, Concurrency: 1, Depth: 1})
	ctx := context.Background()
	a.admit(ctx)
	oldest := make(chan error, 1)
	go func() {
		_, err := a.admit(ctx)
		oldest <- err
	}()
	waitFor(t, func() bool { return a.queued() == 1 })
	// The newest arrival displaces the oldest waiter and takes its place.
	newest := make(chan error, 1)
	var evictedN int
	go func() {
		n, err := a.admit(ctx)
		evictedN = n
		newest <- err
	}()
	if err := <-oldest; !errors.Is(err, ErrOverloaded) {
		t.Fatalf("evicted waiter = %v, want ErrOverloaded", err)
	}
	a.release()
	if err := <-newest; err != nil {
		t.Fatalf("displacing arrival: %v", err)
	}
	if evictedN != 1 {
		t.Errorf("evicted count = %d, want 1", evictedN)
	}
}

func TestAdmissionCtxWhileQueued(t *testing.T) {
	a := newAdmission(AdmissionConfig{Policy: AdmitQueue, Concurrency: 1, Depth: 4})
	a.admit(context.Background())
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := a.admit(ctx)
		errc <- err
	}()
	waitFor(t, func() bool { return a.queued() == 1 })
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter = %v, want context.Canceled", err)
	}
	if a.queued() != 0 {
		t.Errorf("cancelled waiter still queued")
	}
	// The execution slot was untouched by the cancellation.
	a.release()
	if _, err := a.admit(context.Background()); err != nil {
		t.Fatalf("admit after release: %v", err)
	}
}

func TestAdmissionShutdownFlushesWaiters(t *testing.T) {
	a := newAdmission(AdmissionConfig{Policy: AdmitQueue, Concurrency: 1, Depth: 4})
	ctx := context.Background()
	a.admit(ctx)
	const waiters = 3
	errs := make(chan error, waiters)
	for i := 0; i < waiters; i++ {
		go func() {
			_, err := a.admit(ctx)
			errs <- err
		}()
	}
	waitFor(t, func() bool { return a.queued() == waiters })
	if n := a.shutdown(ErrShutdown); n != waiters {
		t.Errorf("shutdown flushed %d, want %d", n, waiters)
	}
	for i := 0; i < waiters; i++ {
		if err := <-errs; !errors.Is(err, ErrShutdown) {
			t.Errorf("flushed waiter = %v, want ErrShutdown", err)
		}
	}
	if _, err := a.admit(ctx); !errors.Is(err, ErrShutdown) {
		t.Errorf("admit after shutdown = %v, want ErrShutdown", err)
	}
}

// waitFor polls cond until true or the deadline lapses.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in 5s")
		}
		time.Sleep(time.Millisecond)
	}
}

// --- Service-level tests. ---

func TestSubmitShedsExpiredDeadline(t *testing.T) {
	s := newService(t, Config{Workers: 1, BatchSize: 16})
	ctx, cancel := context.WithTimeout(context.Background(), -time.Second)
	defer cancel()
	if _, err := s.Submit(ctx, Query{Candidates: 10}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired-deadline Submit = %v, want DeadlineExceeded", err)
	}
	st := s.Stats()
	if st.ShedDeadline != 1 || st.Completed != 0 || st.Cancelled != 0 {
		t.Errorf("stats = %+v, want 1 shed-deadline, nothing executed", st)
	}
}

func TestConfigDeadlineApplies(t *testing.T) {
	// With a config deadline and a saturated queue-policy gate, a parked
	// query sheds on deadline expiry instead of waiting forever.
	s := newService(t, Config{
		Workers:   1,
		BatchSize: 16,
		Admission: AdmissionConfig{Policy: AdmitQueue, Concurrency: 1, Depth: 4},
		Deadline:  30 * time.Millisecond,
	})
	release := make(chan struct{})
	holder := make(chan error, 1)
	go func() {
		// Occupy the only execution slot far beyond the deadline.
		_, err := s.adm.admit(context.Background())
		holder <- err
		<-release
		s.adm.release()
	}()
	if err := <-holder; err != nil {
		t.Fatal(err)
	}
	_, err := s.Submit(context.Background(), Query{Candidates: 10})
	close(release)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("queued past deadline = %v, want DeadlineExceeded", err)
	}
	if st := s.Stats(); st.ShedDeadline != 1 {
		t.Errorf("ShedDeadline = %d, want 1", st.ShedDeadline)
	}
}

func TestCloseUnderSaturationAbandonsQueued(t *testing.T) {
	s := newService(t, Config{
		Workers:   1,
		BatchSize: MaxBatchSize,
		Admission: AdmissionConfig{Policy: AdmitQueue, Concurrency: 1, Depth: 8},
	})
	// The injected delay holds the admission slot open past the forward
	// pass (release defers until Submit returns), so the holder query is
	// deterministically slow regardless of how fast the kernel backend
	// finishes the actual compute.
	if err := s.SetDelay(200 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	// One slow query holds the execution slot; several more park behind it.
	var wg sync.WaitGroup
	holderErr := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, err := s.Submit(context.Background(), Query{Candidates: 1000})
		holderErr <- err
	}()
	waitFor(t, func() bool {
		s.adm.mu.Lock()
		busy := s.adm.inExec > 0
		s.adm.mu.Unlock()
		return busy
	})
	const queued = 4
	errs := make(chan error, queued)
	for i := 0; i < queued; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := s.Submit(context.Background(), Query{Candidates: 10})
			errs <- err
		}()
	}
	waitFor(t, func() bool { return s.adm.queued() == queued })
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	for i := 0; i < queued; i++ {
		if err := <-errs; !errors.Is(err, ErrShutdown) {
			t.Errorf("queued query at close = %v, want ErrShutdown", err)
		}
	}
	if err := <-holderErr; err != nil {
		t.Errorf("in-flight query at close = %v, want completion", err)
	}
	st := s.Stats()
	if st.Abandoned != queued || st.Completed != 1 {
		t.Errorf("stats = %+v, want %d abandoned / 1 completed", st, queued)
	}
	if got := st.Completed + st.Abandoned; st.Submitted != got {
		t.Errorf("counter identity: submitted %d != completed+abandoned %d", st.Submitted, got)
	}
}

func TestDegradeLadderManual(t *testing.T) {
	fb := func() *model.Model {
		cfg, err := model.ByName("NCF")
		if err != nil {
			t.Fatal(err)
		}
		m, err := model.New(cfg, 99)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}()
	s := newService(t, Config{
		Workers:   1,
		BatchSize: 16,
		Degrade:   DegradeConfig{Truncate: 8, Fallback: fb},
	})
	if got := len(s.degLadder); got != 3 {
		t.Fatalf("ladder has %d rungs, want 3", got)
	}
	ctx := context.Background()

	// Level 1: truncation only.
	if err := s.SetDegradeLevel(1); err != nil {
		t.Fatal(err)
	}
	r, err := s.Submit(ctx, Query{Candidates: 100, TopN: 3})
	if err != nil {
		t.Fatal(err)
	}
	if r.Degraded {
		t.Error("truncation rung must not mark the reply degraded")
	}
	st := s.Stats()
	if st.Truncated != 1 || st.FallbackServed != 0 {
		t.Errorf("level 1 counters = %+v", st)
	}
	if st.WorkItems != 8 {
		t.Errorf("truncated query admitted %d items of work, want 8", st.WorkItems)
	}

	// Level 2: fallback model (plus truncation).
	if err := s.SetDegradeLevel(2); err != nil {
		t.Fatal(err)
	}
	r, err = s.Submit(ctx, Query{Candidates: 100, TopN: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Degraded {
		t.Error("fallback rung must mark the reply degraded")
	}
	if len(r.Recs) != 3 {
		t.Errorf("degraded reply has %d recs, want 3", len(r.Recs))
	}
	st = s.Stats()
	if st.Truncated != 2 || st.FallbackServed != 1 {
		t.Errorf("level 2 counters = %+v", st)
	}

	// A small query is untouched by truncation.
	if err := s.SetDegradeLevel(1); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(ctx, Query{Candidates: 5}); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Truncated != 2 {
		t.Errorf("small query truncated: %+v", st)
	}

	if err := s.SetDegradeLevel(3); err == nil {
		t.Error("level beyond the ladder accepted")
	}
	if err := s.SetDegradeLevel(-1); err == nil {
		t.Error("negative level accepted")
	}
}

func TestDegradedQueriesStayOnCPULane(t *testing.T) {
	fb := testModel(t)
	s := newService(t, Config{
		Workers:      1,
		BatchSize:    16,
		GPU:          testGPU(2),
		GPUThreshold: 1, // everything would offload at full service
		Degrade:      DegradeConfig{Fallback: fb},
	})
	if err := s.SetDegradeLevel(1); err != nil {
		t.Fatal(err)
	}
	r, err := s.Submit(context.Background(), Query{Candidates: 50})
	if err != nil {
		t.Fatal(err)
	}
	if r.Offloaded || !r.Degraded {
		t.Errorf("fallback query: offloaded=%v degraded=%v, want CPU-lane degraded", r.Offloaded, r.Degraded)
	}
	if st := s.Stats(); st.GPUQueries != 0 {
		t.Errorf("fallback query counted as offloaded: %+v", st)
	}
}

func TestDegraderWalksLadder(t *testing.T) {
	// Step up: an absurdly tight SLA makes every sample a breach.
	s := newService(t, Config{
		Workers:      1,
		BatchSize:    16,
		SLA:          time.Nanosecond,
		TuneInterval: 10 * time.Millisecond,
		Degrade:      DegradeConfig{Truncate: 8},
	})
	ctx := context.Background()
	deadline := time.Now().Add(10 * time.Second)
	for s.DegradeLevel() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("degrader never stepped up")
		}
		if _, err := s.Submit(ctx, Query{Candidates: 20}); err != nil {
			t.Fatal(err)
		}
	}
	if st := s.Stats(); st.DegradeSteps == 0 {
		t.Error("DegradeSteps not counted")
	}

	// Step down: a huge SLA gives every sample comfortable headroom.
	s2 := newService(t, Config{
		Workers:      1,
		BatchSize:    16,
		SLA:          time.Hour,
		TuneInterval: 10 * time.Millisecond,
		Degrade:      DegradeConfig{Truncate: 8},
	})
	if err := s2.SetDegradeLevel(1); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(10 * time.Second)
	for s2.DegradeLevel() > 0 {
		if time.Now().After(deadline) {
			t.Fatal("degrader never stepped down")
		}
		if _, err := s2.Submit(ctx, Query{Candidates: 20}); err != nil {
			t.Fatal(err)
		}
	}
}

func TestFailAbortsPromptly(t *testing.T) {
	s := newService(t, Config{
		Workers:   1,
		BatchSize: MaxBatchSize,
		Admission: AdmissionConfig{Policy: AdmitQueue, Concurrency: 1, Depth: 4},
	})
	// Hold the admission slot open past the forward pass (see
	// TestCloseUnderSaturationAbandonsQueued) so the queue forms no matter
	// how fast the kernel backend is.
	if err := s.SetDelay(200 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	// One query executes, one parks in the admission queue.
	execErr := make(chan error, 1)
	go func() {
		_, err := s.Submit(ctx, Query{Candidates: 1000})
		execErr <- err
	}()
	waitFor(t, func() bool {
		s.adm.mu.Lock()
		busy := s.adm.inExec > 0
		s.adm.mu.Unlock()
		return busy
	})
	queuedErr := make(chan error, 1)
	go func() {
		_, err := s.Submit(ctx, Query{Candidates: 10})
		queuedErr <- err
	}()
	waitFor(t, func() bool { return s.adm.queued() == 1 })

	s.Fail()
	if err := <-queuedErr; !errors.Is(err, ErrReplicaDown) {
		t.Errorf("queued query at crash = %v, want ErrReplicaDown", err)
	}
	// The executing query either aborted on the crash or had already
	// finished its forward pass (completion wins by design).
	if err := <-execErr; err != nil && !errors.Is(err, ErrReplicaDown) {
		t.Errorf("in-flight query at crash = %v", err)
	}
	if !s.Failed() {
		t.Error("Failed() false after Fail")
	}
	if _, err := s.Submit(ctx, Query{Candidates: 10}); !errors.Is(err, ErrReplicaDown) {
		t.Errorf("Submit after crash = %v, want ErrReplicaDown", err)
	}
	st := s.Stats()
	if st.Failed < 2 { // the queued query, the post-crash submit, maybe the in-flight one
		t.Errorf("Failed = %d, want >= 2", st.Failed)
	}
	if got := st.Completed + st.Cancelled + st.Shed + st.ShedDeadline + st.Failed + st.Abandoned; st.Submitted != got {
		t.Errorf("counter identity: submitted %d != accounted %d (%+v)", st.Submitted, got, st)
	}
}

func TestScaleAndDelayInjection(t *testing.T) {
	s := newService(t, Config{Workers: 1, BatchSize: 16})
	if err := s.SetScale(3); err != nil {
		t.Fatal(err)
	}
	if got := s.Scale(); got != 3 {
		t.Errorf("Scale() = %v after SetScale(3)", got)
	}
	if err := s.SetScale(-1); err == nil {
		t.Error("negative scale accepted")
	}
	if err := s.SetScale(1); err != nil {
		t.Fatal(err)
	}
	if err := s.SetDelay(-time.Second); err == nil {
		t.Error("negative delay accepted")
	}
	if err := s.SetDelay(50 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	r, err := s.Submit(context.Background(), Query{Candidates: 10})
	if err != nil {
		t.Fatal(err)
	}
	if r.Latency < 50*time.Millisecond {
		t.Errorf("latency %v under the injected 50ms delay", r.Latency)
	}
	if err := s.SetDelay(0); err != nil {
		t.Fatal(err)
	}
}

func TestAdmissionConfigValidation(t *testing.T) {
	m := testModel(t)
	bad := []Config{
		{Model: m, Admission: AdmissionConfig{Policy: AdmissionPolicy(9)}},
		{Model: m, Admission: AdmissionConfig{Policy: AdmitQueue, Concurrency: -1}},
		{Model: m, Admission: AdmissionConfig{Policy: AdmitQueue, Depth: -1}},
		{Model: m, Deadline: -time.Second},
		{Model: m, Degrade: DegradeConfig{Truncate: -1}},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}
