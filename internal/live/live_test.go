package live

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/deeprecinfra/deeprecsys/internal/model"
	"github.com/deeprecinfra/deeprecsys/internal/stats"
	"github.com/deeprecinfra/deeprecsys/internal/workload"
)

// testModel builds a small, fast zoo model for live-serving tests.
func testModel(t testing.TB) *model.Model {
	t.Helper()
	cfg, err := model.ByName("NCF")
	if err != nil {
		t.Fatal(err)
	}
	m, err := model.New(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func newService(t testing.TB, cfg Config) *Service {
	t.Helper()
	if cfg.Model == nil {
		cfg.Model = testModel(t)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("nil model accepted")
	}
	m := testModel(t)
	bad := []Config{
		{Model: m, Workers: -1},
		{Model: m, BatchSize: -5},
		{Model: m, BatchSize: MaxBatchSize + 1},
		{Model: m, SLA: -time.Second},
		{Model: m, AutoTune: true}, // no SLA
		{Model: m, AutoTune: true, SLA: time.Second, WindowSize: minTuneSamples - 1},
		{Model: m, TuneInterval: -time.Second},
		{Model: m, WindowSize: -1},
		{Model: m, QueueDepth: -1},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, cfg)
		}
	}
}

func TestSubmitValidation(t *testing.T) {
	s := newService(t, Config{Workers: 1, BatchSize: 8})
	if _, err := s.Submit(context.Background(), Query{Candidates: 0}); err == nil {
		t.Error("zero candidates accepted")
	}
	if _, err := s.Submit(context.Background(), Query{Candidates: 5, TopN: -1}); err == nil {
		t.Error("negative TopN accepted")
	}
	if _, err := s.Submit(context.Background(), Query{Candidates: workload.MaxQuerySize + 1}); err == nil {
		t.Error("oversized query accepted")
	}
}

// TestConcurrentSubmitters hammers the service from many goroutines and
// checks every reply is well-formed; -race covers the synchronization.
func TestConcurrentSubmitters(t *testing.T) {
	s := newService(t, Config{Workers: 4, BatchSize: 16, WindowSize: 1024})
	const goroutines, perG = 8, 12
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*perG)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				candidates := 5 + (g*perG+i)%60
				reply, err := s.Submit(context.Background(), Query{Candidates: candidates, TopN: 3})
				if err != nil {
					errs <- err
					return
				}
				if len(reply.Recs) != min(3, candidates) {
					t.Errorf("got %d recs for %d candidates", len(reply.Recs), candidates)
				}
				for j, r := range reply.Recs {
					if r.Item < 0 || r.Item >= candidates {
						t.Errorf("item %d outside candidate set %d", r.Item, candidates)
					}
					if j > 0 && r.CTR > reply.Recs[j-1].CTR {
						t.Error("recs not sorted by CTR")
					}
				}
				if reply.Latency <= 0 {
					t.Error("non-positive latency")
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Completed != goroutines*perG || st.Submitted != goroutines*perG {
		t.Errorf("stats = %+v, want %d completed", st, goroutines*perG)
	}
	if st.P95 <= 0 || st.P50 > st.P95 {
		t.Errorf("online percentiles inconsistent: %+v", st)
	}
}

// TestContextCancellationMidQuery cancels a query while its chunks are
// queued behind a clogged single-worker pipeline.
func TestContextCancellationMidQuery(t *testing.T) {
	s := newService(t, Config{Workers: 1, BatchSize: 1, QueueDepth: 1})
	// Clog the lone worker and the depth-1 queue with a many-chunk query.
	bgDone := make(chan struct{})
	go func() {
		defer close(bgDone)
		if _, err := s.Submit(context.Background(), Query{Candidates: 200}); err != nil {
			t.Errorf("background query: %v", err)
		}
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	_, err := s.Submit(ctx, Query{Candidates: 200})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Submit = %v, want deadline exceeded", err)
	}
	<-bgDone
	st := s.Stats()
	if st.Cancelled != 1 || st.Completed != 1 {
		t.Errorf("stats = %+v, want 1 cancelled / 1 completed", st)
	}
}

// TestCloseDrains checks graceful shutdown: queries in flight when Close
// begins complete normally, Close returns only after they have, and later
// submissions are rejected with ErrClosed.
func TestCloseDrains(t *testing.T) {
	s := newService(t, Config{Workers: 2, BatchSize: 8})
	const n = 10
	var started, returned atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			started.Add(1)
			_, err := s.Submit(context.Background(), Query{Candidates: 40})
			if err != nil && !errors.Is(err, ErrClosed) {
				t.Errorf("Submit: %v", err)
			}
			returned.Add(1)
		}()
	}
	for started.Load() < n {
		time.Sleep(time.Millisecond)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Every Submit that entered before Close must have returned by now:
	// Close waits out the in-flight count before tearing the pool down.
	if got := returned.Load(); got != started.Load() {
		t.Errorf("Close returned with %d/%d submits outstanding", started.Load()-got, started.Load())
	}
	wg.Wait()
	if _, err := s.Submit(context.Background(), Query{Candidates: 4}); !errors.Is(err, ErrClosed) {
		t.Errorf("post-Close Submit = %v, want ErrClosed", err)
	}
	if err := s.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
	st := s.Stats()
	if st.Completed+st.Cancelled != uint64(st.Submitted) {
		t.Errorf("accounting leak: %+v", st)
	}
}

// TestOnlineP95MatchesReplies drives a deterministic fixed-size workload
// serially and checks the online window converges to exactly the empirical
// p95 of the measured replies (the window holds every sample).
func TestOnlineP95MatchesReplies(t *testing.T) {
	s := newService(t, Config{Workers: 2, BatchSize: 32, WindowSize: 512, SLA: time.Minute})
	const n = 80
	latencies := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		reply, err := s.Submit(context.Background(), Query{Candidates: 64})
		if err != nil {
			t.Fatal(err)
		}
		latencies = append(latencies, reply.Latency.Seconds())
	}
	st := s.Stats()
	if st.WindowLen != n {
		t.Fatalf("window holds %d samples, want %d", st.WindowLen, n)
	}
	want := time.Duration(stats.Percentile(latencies, 95) * float64(time.Second))
	if st.P95 != want {
		t.Errorf("online p95 %v != empirical p95 %v", st.P95, want)
	}
	if !st.MeetsSLA() {
		t.Errorf("a minute-scale SLA should be met, stats %+v", st)
	}
}

// TestAutoTuneStepsDown checks the controller reacts to a breached tail by
// reducing the batch size (more request-level parallelism).
func TestAutoTuneStepsDown(t *testing.T) {
	s := newService(t, Config{
		Workers: 2, BatchSize: 256, WindowSize: 256,
		SLA:      time.Nanosecond, // unmeetable: every sample breaches
		AutoTune: true, TuneInterval: 10 * time.Millisecond,
	})
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if _, err := s.Submit(context.Background(), Query{Candidates: 16}); err != nil {
			t.Fatal(err)
		}
		if s.Stats().Retunes >= 2 {
			break
		}
	}
	st := s.Stats()
	if st.Retunes < 1 || st.BatchSize >= 256 {
		t.Errorf("controller never stepped down: %+v", st)
	}
}

// TestAutoTuneStepsUp checks the controller recovers batch efficiency when
// the tail has ample headroom.
func TestAutoTuneStepsUp(t *testing.T) {
	s := newService(t, Config{
		Workers: 2, BatchSize: 1, WindowSize: 256,
		SLA:      time.Hour, // bottomless headroom
		AutoTune: true, TuneInterval: 10 * time.Millisecond,
	})
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if _, err := s.Submit(context.Background(), Query{Candidates: 8}); err != nil {
			t.Fatal(err)
		}
		if s.Stats().Retunes >= 1 {
			break
		}
	}
	st := s.Stats()
	if st.Retunes < 1 || st.BatchSize <= 1 {
		t.Errorf("controller never stepped up: %+v", st)
	}
}

// TestAutoTuneClampsAtMax starts from a non-power-of-two batch so the
// doubling step would overshoot MaxBatchSize without the clamp.
func TestAutoTuneClampsAtMax(t *testing.T) {
	s := newService(t, Config{
		Workers: 2, BatchSize: 600, WindowSize: 256,
		SLA: time.Hour, AutoTune: true, TuneInterval: 10 * time.Millisecond,
	})
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if _, err := s.Submit(context.Background(), Query{Candidates: 8}); err != nil {
			t.Fatal(err)
		}
		if s.Stats().Retunes >= 1 {
			break
		}
	}
	st := s.Stats()
	if st.Retunes < 1 {
		t.Fatal("controller never stepped up")
	}
	if st.BatchSize <= 600 || st.BatchSize > MaxBatchSize {
		t.Errorf("batch %d after step-up, want (600, %d]", st.BatchSize, MaxBatchSize)
	}
}

func TestSetBatchSize(t *testing.T) {
	s := newService(t, Config{Workers: 1})
	if err := s.SetBatchSize(64); err != nil || s.BatchSize() != 64 {
		t.Errorf("SetBatchSize(64): %v, batch %d", err, s.BatchSize())
	}
	if err := s.SetBatchSize(0); err == nil {
		t.Error("batch 0 accepted")
	}
	if err := s.SetBatchSize(MaxBatchSize + 1); err == nil {
		t.Error("oversized batch accepted")
	}
}

// TestIntraOpParallelism runs big-batch queries through a pool whose
// workers split each chunk across the par pool — per-part scratch arenas
// active — under concurrent submitters; -race pins the arena ownership
// rules. Ranked results must be exactly those of a serial service with the
// same seed, because row-split forwards are bit-identical.
func TestIntraOpParallelism(t *testing.T) {
	m := testModel(t)
	serial := newService(t, Config{Model: m, Workers: 1, BatchSize: 512, Seed: 11})
	split := newService(t, Config{Model: m, Workers: 1, BatchSize: 512, Seed: 11, IntraOp: 4})

	// Both single-worker pools draw inputs from identical RNG streams, so
	// the first query of each is directly comparable.
	const candidates, topN = 400, 7
	want, err := serial.Submit(context.Background(), Query{Candidates: candidates, TopN: topN})
	if err != nil {
		t.Fatal(err)
	}
	got, err := split.Submit(context.Background(), Query{Candidates: candidates, TopN: topN})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Recs) != len(want.Recs) {
		t.Fatalf("got %d recs, want %d", len(got.Recs), len(want.Recs))
	}
	for i := range want.Recs {
		if got.Recs[i] != want.Recs[i] {
			t.Fatalf("rec %d = %+v, want %+v (intra-op split changed results)", i, got.Recs[i], want.Recs[i])
		}
	}

	// Now hammer the split service concurrently; -race checks the arenas.
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				if _, err := split.Submit(context.Background(), Query{Candidates: 300, TopN: 5}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestIntraOpValidation(t *testing.T) {
	m := testModel(t)
	if _, err := New(Config{Model: m, IntraOp: -1}); err == nil {
		t.Error("negative IntraOp accepted")
	}
	if _, err := New(Config{Model: m, IntraOp: 65}); err == nil {
		t.Error("oversized IntraOp accepted")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
