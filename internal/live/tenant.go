package live

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"github.com/deeprecinfra/deeprecsys/internal/model"
	"github.com/deeprecinfra/deeprecsys/internal/stats"
	"github.com/deeprecinfra/deeprecsys/internal/workload"
)

// TenantConfig binds one named tenant onto a shared Service: a model with
// its own SLA, two-knob operating point, admission/degrade configuration,
// access distribution, and stats ledger. Tenants share the service's
// executor lanes — the CPU worker pool and the accelerator streams — so
// co-located tenants contend exactly the way co-located production models
// do; everything above the lanes (knobs, windows, gates, ladders, counters)
// is per-tenant.
//
// Unset per-tenant fields inherit the Config-level value (which in turn has
// the usual default), so a TenantConfig needs only what differs from the
// service's baseline.
type TenantConfig struct {
	// Name identifies the tenant in Query.Tenant lookups, Stats, and
	// reports. Required when Config.Tenants is used; must be unique.
	Name string
	// Model executes the tenant's forward passes (required). Tenants must
	// not share a *model.Model instance: per-tenant embedding-store
	// counters are read off the instance, so a shared one would merge the
	// tenants' ledgers.
	Model *model.Model
	// BatchSize is the tenant's initial per-request batch size (0 =
	// inherit Config.BatchSize).
	BatchSize int
	// GPUThreshold routes the tenant's queries of at least this size to
	// the shared accelerator lane (0 = inherit Config.GPUThreshold).
	GPUThreshold int
	// SLA is the tenant's p95 target (0 = inherit Config.SLA).
	SLA time.Duration
	// AutoTune runs this tenant's own two-knob controller against its own
	// measured p95 (ORed with Config.AutoTune).
	AutoTune bool
	// WindowSize bounds the tenant's online latency window (0 = inherit).
	WindowSize int
	// Admission bounds the work this tenant may have in the lanes at once
	// — the per-tenant outstanding-work cap that keeps one tenant's
	// saturation from consuming every execution slot. The zero value
	// inherits Config.Admission.
	Admission AdmissionConfig
	// Deadline is the tenant's per-query latency budget (0 = inherit).
	Deadline time.Duration
	// Degrade is the tenant's graceful-degradation ladder (zero value =
	// inherit Config.Degrade).
	Degrade DegradeConfig
	// Access is the tenant's sparse-index popularity distribution (nil =
	// inherit Config.Access).
	Access workload.IndexDist
	// Share is the tenant's relative weight: fleet placement policies size
	// partitions with it and callers implementing a weighted A/B split
	// read it back from Stats. The live service itself does not split
	// traffic — Query.Tenant names the tenant explicitly. 0 = 1.
	Share float64
}

// withDefaults fills one tenant's unset fields from the (already defaulted)
// shared config and validates the result. idx and the config are only used
// for error text.
func (tc TenantConfig) withDefaults(cfg Config, idx int) (TenantConfig, error) {
	scope := fmt.Sprintf("tenant %d (%s)", idx, tc.Name)
	if tc.Model == nil {
		return tc, fmt.Errorf("live: %s: Model is required", scope)
	}
	if tc.BatchSize == 0 {
		tc.BatchSize = cfg.BatchSize
	}
	if tc.BatchSize < 1 || tc.BatchSize > MaxBatchSize {
		return tc, fmt.Errorf("live: %s: batch size %d outside [1, %d]", scope, tc.BatchSize, MaxBatchSize)
	}
	if tc.GPUThreshold == 0 {
		tc.GPUThreshold = cfg.GPUThreshold
	}
	if tc.GPUThreshold < 0 || tc.GPUThreshold > workload.MaxQuerySize {
		return tc, fmt.Errorf("live: %s: GPU threshold %d outside [0, %d]", scope, tc.GPUThreshold, workload.MaxQuerySize)
	}
	if tc.GPUThreshold > 0 && cfg.GPU == nil {
		return tc, fmt.Errorf("live: %s: GPU threshold set without an accelerator (Config.GPU)", scope)
	}
	if tc.SLA == 0 {
		tc.SLA = cfg.SLA
	}
	if tc.SLA < 0 {
		return tc, fmt.Errorf("live: %s: negative SLA %v", scope, tc.SLA)
	}
	tc.AutoTune = tc.AutoTune || cfg.AutoTune
	if tc.AutoTune && tc.SLA == 0 {
		return tc, fmt.Errorf("live: %s: AutoTune requires an SLA target", scope)
	}
	if tc.WindowSize == 0 {
		tc.WindowSize = cfg.WindowSize
	}
	if tc.WindowSize < 1 {
		return tc, fmt.Errorf("live: %s: window size %d < 1", scope, tc.WindowSize)
	}
	if tc.AutoTune && tc.WindowSize < minTuneSamples {
		return tc, fmt.Errorf("live: %s: AutoTune needs a window of at least %d samples, got %d", scope, minTuneSamples, tc.WindowSize)
	}
	if tc.Admission == (AdmissionConfig{}) {
		tc.Admission = cfg.Admission
	}
	if tc.Admission.Policy < AdmitAll || tc.Admission.Policy > AdmitShedOldest {
		return tc, fmt.Errorf("live: %s: unknown admission policy %d", scope, tc.Admission.Policy)
	}
	if tc.Admission.Policy != AdmitAll {
		if tc.Admission.Concurrency == 0 {
			tc.Admission.Concurrency = 2 * cfg.Workers
		}
		if tc.Admission.Concurrency < 1 {
			return tc, fmt.Errorf("live: %s: admission concurrency %d < 1", scope, tc.Admission.Concurrency)
		}
		if tc.Admission.Depth == 0 {
			tc.Admission.Depth = 4 * tc.Admission.Concurrency
		}
		if tc.Admission.Depth < 1 {
			return tc, fmt.Errorf("live: %s: admission queue depth %d < 1", scope, tc.Admission.Depth)
		}
	}
	if tc.Deadline == 0 {
		tc.Deadline = cfg.Deadline
	}
	if tc.Deadline < 0 {
		return tc, fmt.Errorf("live: %s: negative deadline %v", scope, tc.Deadline)
	}
	if !tc.Degrade.enabled() {
		tc.Degrade = cfg.Degrade
	}
	if tc.Degrade.Truncate < 0 || tc.Degrade.Truncate > workload.MaxQuerySize {
		return tc, fmt.Errorf("live: %s: degrade truncation %d outside [0, %d]", scope, tc.Degrade.Truncate, workload.MaxQuerySize)
	}
	if tc.Access == nil {
		tc.Access = cfg.Access
	}
	if _, uniform := tc.Access.(workload.UniformAccess); uniform {
		// Explicit uniform access takes the exact nil-sampler fast path
		// (bit-identical to the legacy rng.Intn stream).
		tc.Access = nil
	}
	if tc.Share == 0 {
		tc.Share = 1
	}
	if tc.Share < 0 {
		return tc, fmt.Errorf("live: %s: negative share %v", scope, tc.Share)
	}
	return tc, nil
}

// tenant is the per-tenant serving state behind the shared executor lanes:
// the live knobs its controller walks, its online latency window, admission
// gate, degrade ladder position, and the full counter ledger. Lifetime
// counters satisfy the per-tenant conservation identity
//
//	Submitted == Completed + Cancelled + Shed + ShedDeadline + Failed + Abandoned
//
// independently of every other tenant (pinned by the mixed-tenant soak).
type tenant struct {
	idx      int
	name     string
	model    *model.Model
	profile  model.Profile // modeled accelerator time for this tenant's queries
	sla      time.Duration
	deadline time.Duration
	autoTune bool
	share    float64
	access   workload.IndexDist
	fallback *model.Model

	batch    atomic.Int64
	thresh   atomic.Int64
	win      *stats.Window
	adm      *admission // nil = admission control off for this tenant
	degLevel atomic.Int32

	degLadder []degradeRung

	submitted atomic.Uint64
	completed atomic.Uint64
	cancelled atomic.Uint64
	retunes   atomic.Uint64

	shed         atomic.Uint64
	evicted      atomic.Uint64
	shedDeadline atomic.Uint64
	failedQ      atomic.Uint64
	abandoned    atomic.Uint64

	truncated      atomic.Uint64
	fallbackServed atomic.Uint64
	degradeSteps   atomic.Uint64

	gpuQueries atomic.Uint64
	cpuQueries atomic.Uint64
	gpuItems   atomic.Uint64
	cpuItems   atomic.Uint64
}

// newTenant builds the runtime state for one validated tenant config.
func newTenant(idx int, tc TenantConfig) *tenant {
	t := &tenant{
		idx:       idx,
		name:      tc.Name,
		model:     tc.Model,
		profile:   model.BuildProfile(tc.Model.Cfg),
		sla:       tc.SLA,
		deadline:  tc.Deadline,
		autoTune:  tc.AutoTune,
		share:     tc.Share,
		access:    tc.Access,
		fallback:  tc.Degrade.Fallback,
		win:       stats.NewWindow(tc.WindowSize),
		degLadder: tc.Degrade.rungs(),
	}
	t.batch.Store(int64(tc.BatchSize))
	t.thresh.Store(int64(tc.GPUThreshold))
	if tc.Admission.Policy != AdmitAll {
		t.adm = newAdmission(tc.Admission)
	}
	return t
}

// countAborted records a pre-execution context abort in the right counter:
// a deadline expiry is a deadline shed (the overload-defense outcome), an
// explicit cancellation stays a plain cancel.
func (t *tenant) countAborted(err error) {
	if errors.Is(err, context.DeadlineExceeded) {
		t.shedDeadline.Add(1)
	} else {
		t.cancelled.Add(1)
	}
}

// snapshot builds this tenant's slice of the service Stats.
func (t *tenant) snapshot() Stats {
	sum := t.win.Summary()
	st := Stats{
		Tenant:         t.name,
		Share:          t.share,
		Submitted:      t.submitted.Load(),
		Completed:      t.completed.Load(),
		Cancelled:      t.cancelled.Load(),
		BatchSize:      int(t.batch.Load()),
		GPUThreshold:   int(t.thresh.Load()),
		GPUQueries:     t.gpuQueries.Load(),
		P50:            time.Duration(sum.P50 * float64(time.Second)),
		P95:            time.Duration(sum.P95 * float64(time.Second)),
		WindowLen:      sum.Count,
		SLA:            t.sla,
		Retunes:        t.retunes.Load(),
		Shed:           t.shed.Load(),
		Evicted:        t.evicted.Load(),
		ShedDeadline:   t.shedDeadline.Load(),
		Abandoned:      t.abandoned.Load(),
		DegradeLevel:   int(t.degLevel.Load()),
		DegradeSteps:   t.degradeSteps.Load(),
		Truncated:      t.truncated.Load(),
		FallbackServed: t.fallbackServed.Load(),
		Failed:         t.failedQ.Load(),
	}
	if t.adm != nil {
		st.Queued = t.adm.queued()
	}
	if est, ok := t.model.EmbStats(); ok {
		if t.fallback != nil {
			if fst, fok := t.fallback.EmbStats(); fok {
				est = est.Add(fst)
			}
		}
		st.EmbStore = true
		st.EmbHits = est.Hits
		st.EmbMisses = est.Misses
		st.EmbEvictions = est.Evictions
		st.EmbBytesRead = est.BytesRead
		st.EmbHitRate = est.HitRate()
	}
	if total := st.GPUQueries + t.cpuQueries.Load(); total > 0 {
		st.GPUQueryShare = float64(st.GPUQueries) / float64(total)
	}
	st.GPUItems = t.gpuItems.Load()
	st.WorkItems = st.GPUItems + t.cpuItems.Load()
	if st.WorkItems > 0 {
		st.GPUWorkShare = float64(st.GPUItems) / float64(st.WorkItems)
	}
	return st
}
