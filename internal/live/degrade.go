package live

import (
	"fmt"
	"time"

	"github.com/deeprecinfra/deeprecsys/internal/model"
)

// DegradeConfig describes the graceful-degradation ladder: what the
// service is allowed to give up, in order, to keep admitting traffic under
// sustained overload. The zero value disables degradation.
//
// The ladder has up to two rungs above normal service:
//
//	level 0  full service (every candidate scored by the primary model)
//	level 1  truncated slate: queries larger than Truncate are cut to
//	         their first Truncate candidates before execution — top-N
//	         quality over a smaller slate, a roughly proportional cut in
//	         per-query compute
//	level 2  cheaper model: forward passes run the Fallback zoo variant
//	         on the CPU lane (in addition to truncation when configured)
//
// Rungs that are not configured are skipped: with only Fallback set the
// ladder is 0 → fallback; with only Truncate set it is 0 → truncated.
type DegradeConfig struct {
	// Truncate caps the candidate slate under degradation (0 = no
	// truncation rung).
	Truncate int
	// Fallback is the cheaper model variant served under deep overload
	// (nil = no fallback rung). Fallback queries are executed on the CPU
	// lane: degradation exists to shed compute, and the cheap variant no
	// longer benefits from offload.
	Fallback *model.Model
}

// rungs expands the config into the ladder's levels, level 0 first.
func (d DegradeConfig) rungs() []degradeRung {
	levels := []degradeRung{{}}
	if d.Truncate > 0 {
		levels = append(levels, degradeRung{truncate: d.Truncate})
	}
	if d.Fallback != nil {
		levels = append(levels, degradeRung{truncate: d.Truncate, fallback: true})
	}
	return levels
}

// enabled reports whether any rung above normal service exists.
func (d DegradeConfig) enabled() bool { return d.Truncate > 0 || d.Fallback != nil }

// degradeRung is one level of the ladder.
type degradeRung struct {
	truncate int  // cap on the candidate slate (0 = none)
	fallback bool // serve with the cheaper model on the CPU lane
}

// degrader is the SLA-aware controller that walks the degrade ladder: the
// middle layer of the overload defense, between per-query admission
// control (instantaneous) and the fleet autoscaler (slow). It runs on the
// same settle/reset discipline as the two-knob hill climb: one level move
// per decision, window reset after every move, one interval skipped so the
// next decision reads only samples from the new operating point.
//
// The step-up signal is sustained overload: the measured p95 over the
// breach threshold, or admission control actively shedding (under deep
// saturation few queries complete, so the shed counter — not the latency
// window — is the reliable signal). The step-down signal is restored
// headroom: p95 under headroomFrac of the SLA with no shedding in the
// interval.
//
// On a multi-tenant service one degrader runs per eligible tenant (ladder
// configured and SLA set), walking that tenant's own ladder against that
// tenant's own tail and shed counters: one tenant can be deep in fallback
// while its neighbors serve full slates.
func (s *Service) degraderFor(t *tenant) {
	defer s.bgWG.Done()
	ticker := time.NewTicker(s.cfg.TuneInterval)
	defer ticker.Stop()
	slaSec := t.sla.Seconds()
	settling := false
	lastShed := t.shed.Load() + t.shedDeadline.Load()
	for {
		select {
		case <-s.bgStop:
			return
		case <-ticker.C:
		}
		shedNow := t.shed.Load() + t.shedDeadline.Load()
		shedDelta := shedNow - lastShed
		lastShed = shedNow
		if settling {
			settling = false
			t.win.Reset()
			continue
		}
		p95 := t.win.Percentile(95)
		enough := t.win.Len() >= minTuneSamples
		lvl := int(t.degLevel.Load())
		switch {
		case shedDelta > 0 || (enough && p95 > slaSec):
			if lvl+1 < len(t.degLadder) {
				t.degLevel.Store(int32(lvl + 1))
				t.degradeSteps.Add(1)
				t.win.Reset()
				settling = true
			}
		case enough && p95 < headroomFrac*slaSec && shedDelta == 0:
			if lvl > 0 {
				t.degLevel.Store(int32(lvl - 1))
				t.degradeSteps.Add(1)
				t.win.Reset()
				settling = true
			}
		}
	}
}

// DegradeLevel returns tenant 0's current degrade level (0 = full service).
func (s *Service) DegradeLevel() int { return int(s.tenants[0].degLevel.Load()) }

// SetDegradeLevel pins tenant 0's degrade level manually (the counterpart
// of the SLA-aware controller, which may move it again when enabled).
// Levels index the configured ladder: 0 is full service, len(ladder)-1 the
// deepest configured degradation.
func (s *Service) SetDegradeLevel(level int) error { return s.SetTenantDegradeLevel(0, level) }

// SetTenantDegradeLevel pins one tenant's degrade level manually.
func (s *Service) SetTenantDegradeLevel(tenant, level int) error {
	t := s.tenants[tenant]
	if level < 0 || level >= len(t.degLadder) {
		return fmt.Errorf("live: degrade level %d outside [0, %d]", level, len(t.degLadder)-1)
	}
	t.degLevel.Store(int32(level))
	return nil
}
