package sched

import (
	"testing"
	"time"

	"github.com/deeprecinfra/deeprecsys/internal/model"
	"github.com/deeprecinfra/deeprecsys/internal/platform"
	"github.com/deeprecinfra/deeprecsys/internal/serving"
	"github.com/deeprecinfra/deeprecsys/internal/workload"
)

func TestClimbFindsUnimodalPeak(t *testing.T) {
	// QPS profile peaks at value 16.
	profile := map[int]float64{1: 10, 2: 20, 4: 40, 8: 70, 16: 100, 32: 60, 64: 30, 128: 10}
	evals := 0
	best, n := climb([]int{1, 2, 4, 8, 16, 32, 64, 128}, 1, func(v int) Score {
		evals++
		return Score{Value: v, QPS: profile[v]}
	})
	if best.Value != 16 {
		t.Errorf("climb found %d, want 16", best.Value)
	}
	if n != evals {
		t.Errorf("reported %d evaluations, spent %d", n, evals)
	}
	// With patience 1 the climb must stop right after the first decline.
	if evals != 6 {
		t.Errorf("spent %d evaluations, want 6 (1..32)", evals)
	}
}

func TestClimbPatienceSkipsLocalDip(t *testing.T) {
	profile := map[int]float64{1: 10, 2: 30, 4: 25, 8: 50, 16: 20, 32: 10}
	best, _ := climb([]int{1, 2, 4, 8, 16, 32}, 2, func(v int) Score {
		return Score{Value: v, QPS: profile[v]}
	})
	if best.Value != 8 {
		t.Errorf("patience-2 climb found %d, want 8 (over the dip at 4)", best.Value)
	}
}

func TestClimbPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	climb(nil, 1, func(int) Score { return Score{} })
}

func TestRefineImprovesWhenMidpointBetter(t *testing.T) {
	// True optimum at 24, coarse climb would settle on 16 or 32.
	f := func(v int) float64 { return -float64((v - 24) * (v - 24)) }
	best := Score{Value: 16, QPS: f(16)}
	refined, n := refine(best, func(v int) Score { return Score{Value: v, QPS: f(v)} })
	if refined.Value != 24 {
		t.Errorf("refine found %d, want 24", refined.Value)
	}
	if n != 2 {
		t.Errorf("refine spent %d evals, want 2", n)
	}
}

func TestPowersOfTwo(t *testing.T) {
	got := powersOfTwo(1000)
	if got[0] != 1 || got[len(got)-1] != 1000 || got[len(got)-2] != 512 {
		t.Errorf("powersOfTwo(1000) = %v", got)
	}
	got = powersOfTwo(64)
	if got[len(got)-1] != 64 || len(got) != 7 {
		t.Errorf("powersOfTwo(64) = %v", got)
	}
}

// schedOpts returns fast search options for scheduler tests.
func schedOpts(sla time.Duration) serving.SearchOpts {
	opts := serving.DefaultSearchOpts(workload.DefaultProduction(), sla)
	opts.Queries = 700
	opts.Warmup = 100
	opts.RelTol = 0.05
	return opts
}

func engineFor(t *testing.T, name string, gpu bool) serving.Engine {
	t.Helper()
	cfg, err := model.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	var g *platform.GPU
	if gpu {
		g = platform.DefaultGPU()
	}
	return serving.NewPlatformEngine(platform.Skylake(), g, cfg)
}

func TestStaticBaselineUsesPaperBatch(t *testing.T) {
	e := engineFor(t, "DLRM-RMC1", false)
	d := StaticBaseline(e, schedOpts(100*time.Millisecond))
	if d.BatchSize != 25 {
		t.Errorf("static batch = %d, want 25 (1000/40 cores)", d.BatchSize)
	}
	if d.QPS <= 0 {
		t.Errorf("baseline QPS = %v, want > 0", d.QPS)
	}
	if d.GPUThreshold != 0 {
		t.Error("baseline must not offload")
	}
}

func TestDeepRecSchedCPUBeatsStaticBaseline(t *testing.T) {
	// The paper's headline claim, per model: tuned batching beats the
	// fixed production configuration.
	for _, name := range []string{"DLRM-RMC1", "DLRM-RMC3", "DIEN"} {
		e := engineFor(t, name, false)
		cfg, _ := model.ByName(name)
		opts := schedOpts(cfg.SLAMedium)
		base := StaticBaseline(e, opts)
		tuned := DeepRecSchedCPU(e, opts)
		if tuned.QPS < base.QPS {
			t.Errorf("%s: tuned QPS %.1f below baseline %.1f", name, tuned.QPS, base.QPS)
		}
		if tuned.GPUThreshold != 0 {
			t.Errorf("%s: CPU-only tuner chose threshold %d", name, tuned.GPUThreshold)
		}
	}
}

func TestOptimalBatchOrderingAcrossModels(t *testing.T) {
	// Paper Fig. 9/12b: embedding-dominated models are optimized at larger
	// batch sizes than attention-dominated DIEN.
	find := func(name string) int {
		e := engineFor(t, name, false)
		cfg, _ := model.ByName(name)
		return DeepRecSchedCPU(e, schedOpts(cfg.SLAMedium)).BatchSize
	}
	rmc1 := find("DLRM-RMC1")
	dien := find("DIEN")
	if rmc1 <= dien {
		t.Errorf("RMC1 optimal batch (%d) should exceed DIEN (%d)", rmc1, dien)
	}
	if rmc1 < 256 {
		t.Errorf("RMC1 optimal batch = %d, want >= 256 (embedding-dominated)", rmc1)
	}
}

func TestOptimalBatchGrowsWithRelaxedSLA(t *testing.T) {
	// Paper Fig. 12a: relaxing the tail target shifts the optimum toward
	// batch-level parallelism.
	e := engineFor(t, "DLRM-RMC3", false)
	cfg, _ := model.ByName("DLRM-RMC3")
	tight := DeepRecSchedCPU(e, schedOpts(cfg.SLA(model.SLALow)))
	loose := DeepRecSchedCPU(e, schedOpts(cfg.SLA(model.SLAHigh)))
	if tight.BatchSize > loose.BatchSize {
		t.Errorf("optimal batch shrank from %d to %d as SLA relaxed", tight.BatchSize, loose.BatchSize)
	}
	if loose.QPS < tight.QPS {
		t.Errorf("capacity fell from %.1f to %.1f as SLA relaxed", tight.QPS, loose.QPS)
	}
}

func TestDeepRecSchedGPUBeatsCPUOnly(t *testing.T) {
	// Paper Fig. 11/14: offloading the heavy tail raises throughput.
	e := engineFor(t, "DLRM-RMC1", true)
	cfg, _ := model.ByName("DLRM-RMC1")
	opts := schedOpts(cfg.SLAMedium)
	cpuOnly := DeepRecSchedCPU(e, opts)
	gpu := DeepRecSchedGPU(e, opts)
	if gpu.QPS < cpuOnly.QPS {
		t.Errorf("GPU decision %.1f QPS below CPU-only %.1f", gpu.QPS, cpuOnly.QPS)
	}
	if gpu.GPUThreshold <= 0 {
		t.Errorf("GPU tuner disabled offload (threshold %d) where it should help", gpu.GPUThreshold)
	}
	if gpu.Result.GPUWorkShare <= 0 {
		t.Error("no work reached the accelerator")
	}
}

func TestTuneThresholdPanicsWithoutGPU(t *testing.T) {
	e := engineFor(t, "NCF", false)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	TuneThreshold(e, 32, schedOpts(5*time.Millisecond))
}

func TestDecisionConfigRoundTrip(t *testing.T) {
	d := Decision{BatchSize: 64, GPUThreshold: 300}
	cfg := d.Config()
	if cfg.BatchSize != 64 || cfg.GPUThreshold != 300 {
		t.Errorf("Config() = %+v", cfg)
	}
}
