package sched

import (
	"github.com/deeprecinfra/deeprecsys/internal/serving"
	"github.com/deeprecinfra/deeprecsys/internal/workload"
)

// Decision is a tuned serving configuration with its measured capacity.
type Decision struct {
	// BatchSize is the chosen per-request batch size.
	BatchSize int
	// GPUThreshold is the chosen offload threshold (0 = CPU only).
	GPUThreshold int
	// QPS is the latency-bounded throughput achieved at this point.
	QPS float64
	// Result is the serving run backing QPS (utilizations, shares, tail).
	Result serving.Result
	// Evaluations counts capacity searches spent reaching the decision.
	Evaluations int
}

// Config returns the serving configuration of the decision.
func (d Decision) Config() serving.Config {
	return serving.Config{BatchSize: d.BatchSize, GPUThreshold: d.GPUThreshold}
}

// MaxTunedBatch caps the batch-size search, matching the paper's explored
// range (up to 1024).
const MaxTunedBatch = 1024

// StaticBaseline evaluates the production baseline the paper compares
// against: a fixed batch size chosen by splitting the largest query evenly
// across all cores, with no accelerator offload (Section V).
func StaticBaseline(e serving.Engine, opts serving.SearchOpts) Decision {
	batch := (workload.MaxQuerySize + e.Cores() - 1) / e.Cores()
	qps, res := serving.MaxQPS(e, serving.Config{BatchSize: batch}, opts)
	return Decision{BatchSize: batch, QPS: qps, Result: res, Evaluations: 1}
}

// TuneBatch runs the batch-size hill climb of DeepRecSched-CPU: starting
// from a unit batch, it doubles the per-request batch size while the
// achievable QPS improves, then refines around the peak. The threshold
// argument is carried through unchanged so the GPU stage can re-tune
// batching decisions are made under the same offload policy.
func TuneBatch(e serving.Engine, threshold int, opts serving.SearchOpts) Decision {
	eval := func(batch int) Score {
		qps, res := serving.MaxQPS(e, serving.Config{BatchSize: batch, GPUThreshold: threshold}, opts)
		return Score{Value: batch, QPS: qps, Result: res}
	}
	best, n1 := climb(powersOfTwo(MaxTunedBatch), 2, eval)
	best, n2 := refine(best, eval)
	return Decision{
		BatchSize:    best.Value,
		GPUThreshold: threshold,
		QPS:          best.QPS,
		Result:       best.Result,
		Evaluations:  n1 + n2,
	}
}

// TuneThreshold runs the accelerator-offload hill climb of
// DeepRecSched-GPU: starting from a unit query-size threshold (every query
// offloaded), it raises the threshold — shifting work back to the CPU pool —
// while the achievable QPS improves, then refines around the peak. The
// batch size for the CPU-side queries is fixed by the caller.
func TuneThreshold(e serving.Engine, batch int, opts serving.SearchOpts) Decision {
	if !e.HasGPU() {
		panic("sched: TuneThreshold on a CPU-only engine")
	}
	eval := func(threshold int) Score {
		qps, res := serving.MaxQPS(e, serving.Config{BatchSize: batch, GPUThreshold: threshold}, opts)
		return Score{Value: threshold, QPS: qps, Result: res}
	}
	// Thresholds beyond the maximum query size disable offload entirely;
	// include one such point so the climb can discover "keep everything on
	// the CPU" if the accelerator never helps.
	cands := powersOfTwo(workload.MaxQuerySize)
	cands = append(cands, workload.MaxQuerySize+1)
	best, n1 := climb(cands, 2, eval)
	best, n2 := refine(best, eval)
	return Decision{
		BatchSize:    batch,
		GPUThreshold: best.Value,
		QPS:          best.QPS,
		Result:       best.Result,
		Evaluations:  n1 + n2,
	}
}

// DeepRecSchedCPU tunes the CPU-only configuration (the paper's
// DeepRecSched-CPU): batch-size hill climbing with no offload.
func DeepRecSchedCPU(e serving.Engine, opts serving.SearchOpts) Decision {
	return TuneBatch(e, 0, opts)
}

// DeepRecSchedGPU tunes the accelerated configuration (the paper's
// DeepRecSched-GPU): first the per-request batch size, then the accelerator
// query-size threshold (Section IV-C's two-stage hill climb).
func DeepRecSchedGPU(e serving.Engine, opts serving.SearchOpts) Decision {
	batchStage := TuneBatch(e, 0, opts)
	threshStage := TuneThreshold(e, batchStage.BatchSize, opts)
	threshStage.Evaluations += batchStage.Evaluations
	// Keep the better of the two stages: if offloading never pays (e.g.
	// extremely loose SLA with a saturated accelerator), the CPU-only
	// operating point stands.
	if batchStage.QPS > threshStage.QPS {
		batchStage.Evaluations = threshStage.Evaluations
		return batchStage
	}
	return threshStage
}
