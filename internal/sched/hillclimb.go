// Package sched implements DeepRecSched, the paper's core contribution: a
// hill-climbing scheduler that maximizes latency-bounded throughput (QPS
// under a p95 SLA) by co-designing two knobs per recommendation service:
//
//  1. the per-request batch size, trading request-level parallelism across
//     CPU cores against batch-level (SIMD/bandwidth) efficiency, and
//  2. the accelerator query-size threshold, offloading the heavy tail of
//     queries to a GPU-class device.
//
// The package also provides the production static baseline the paper
// compares against: a fixed batch size that splits the largest possible
// query evenly across all cores.
package sched

import (
	"fmt"

	"github.com/deeprecinfra/deeprecsys/internal/serving"
)

// Score is one evaluated operating point.
type Score struct {
	Value  int // the knob setting (batch size or threshold)
	QPS    float64
	Result serving.Result
}

// evalFunc measures the achievable QPS at one knob setting.
type evalFunc func(value int) Score

// Plateau/degradation tolerances for the hill climb. An evaluation within
// degradeTol of the best seen so far is a plateau — the climb continues
// without penalty, which matters because the threshold sweep starts on a
// long flat region (every low threshold sends essentially all queries to
// the accelerator). Only drops beyond degradeTol count against patience.
const (
	improveTol = 0.01
	degradeTol = 0.05
)

// climb walks the ordered candidate values, keeping the best score, and
// stops after `patience` degraded evaluations since the last improvement —
// the hill-climbing loop of paper Section IV-C. It returns the best score
// and the number of evaluations spent.
func climb(cands []int, patience int, eval evalFunc) (Score, int) {
	if len(cands) == 0 {
		panic("sched: climb with no candidates")
	}
	if patience < 1 {
		panic(fmt.Sprintf("sched: patience must be >= 1, got %d", patience))
	}
	best := eval(cands[0])
	evals := 1
	bad := 0
	for _, v := range cands[1:] {
		s := eval(v)
		evals++
		switch {
		case s.QPS > best.QPS*(1+improveTol):
			best = s
			bad = 0
		case s.QPS < best.QPS*(1-degradeTol):
			bad++
			if bad >= patience {
				return best, evals
			}
		default:
			// Plateau: prefer the higher score but keep climbing.
			if s.QPS > best.QPS {
				best = s
			}
		}
	}
	return best, evals
}

// refine probes the midpoints between the best value and its power-step
// neighbours, keeping whichever operating point wins. It costs at most two
// extra evaluations and recovers most of the gap a coarse multiplicative
// climb leaves on the table.
func refine(best Score, eval evalFunc) (Score, int) {
	evals := 0
	lower := best.Value - best.Value/4 // midpoint toward value/2
	upper := best.Value + best.Value/2 // midpoint toward 2*value
	for _, v := range []int{lower, upper} {
		if v <= 0 || v == best.Value {
			continue
		}
		s := eval(v)
		evals++
		if s.QPS > best.QPS {
			best = s
		}
	}
	return best, evals
}

// powersOfTwo returns {1, 2, 4, ..., <=max}, always including max itself
// when it is not already a power of two.
func powersOfTwo(max int) []int {
	if max < 1 {
		panic(fmt.Sprintf("sched: powersOfTwo max %d < 1", max))
	}
	var out []int
	for v := 1; v <= max; v *= 2 {
		out = append(out, v)
	}
	if out[len(out)-1] != max {
		out = append(out, max)
	}
	return out
}
