package model

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"

	"github.com/deeprecinfra/deeprecsys/internal/embstore"
	"github.com/deeprecinfra/deeprecsys/internal/nn"
	"github.com/deeprecinfra/deeprecsys/internal/tensor"
)

// scaled returns a zoo config with its tables shrunk to `rows` so store-vs-
// dense comparisons stay fast.
func scaled(t *testing.T, name string, rows int) Config {
	t.Helper()
	cfg, err := ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err = cfg.WithTableScale(rows, 0)
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

func bitsEqual(t *testing.T, label string, want, got *tensor.Tensor) {
	t.Helper()
	if want.Rows != got.Rows || want.Cols != got.Cols {
		t.Fatalf("%s: shape [%dx%d] vs [%dx%d]", label, want.Rows, want.Cols, got.Rows, got.Cols)
	}
	for k := range want.Data {
		if math.Float32bits(want.Data[k]) != math.Float32bits(got.Data[k]) {
			t.Fatalf("%s: outputs differ at %d: %x vs %x", label, k, math.Float32bits(want.Data[k]), math.Float32bits(got.Data[k]))
		}
	}
}

// Acceptance: mmap and cached backends must match the default in-memory
// path bit-for-bit on the same RNG stream at small scale. The stream-seeded
// openers consume the model construction stream exactly where the dense
// path would draw each table, so table rows AND all downstream weights
// (attention, GRU, predictors) are identical.
func TestStreamStoreModelsMatchClassicBitwise(t *testing.T) {
	const seed, rows = 7, 300
	// RMC1 covers sum pooling; DIEN covers concat pooling, sequence-table
	// LookupInto, attention, and the AUGRU stack behind the tables.
	for _, name := range []string{"DLRM-RMC1", "DIEN"} {
		cfg := scaled(t, name, rows)
		classic := MustNew(cfg, seed)

		streamOpener := func(wrap func(nn.RowStore) (nn.RowStore, error)) TableOpener {
			dir := t.TempDir()
			return func(table, rws, dim int, rng *rand.Rand, sd int64) (nn.RowStore, error) {
				path := filepath.Join(dir, fmt.Sprintf("t%d.emb", table))
				if err := embstore.WriteFileStream(path, rng, sd, table, rws, dim); err != nil {
					return nil, err
				}
				st, err := embstore.OpenMapped(path)
				if err != nil {
					return nil, err
				}
				if wrap == nil {
					return st, nil
				}
				return wrap(st)
			}
		}

		variants := map[string]TableOpener{
			"mmap": streamOpener(nil),
			"cached-mmap": streamOpener(func(st nn.RowStore) (nn.RowStore, error) {
				return embstore.NewCached(st.(embstore.Store), embstore.CacheConfig{Policy: embstore.CacheLRU, Rows: 64})
			}),
			"dense-stream": func(table, rws, dim int, rng *rand.Rand, _ int64) (nn.RowStore, error) {
				return embstore.NewDenseStream(rng, rws, dim), nil
			},
		}

		in := classic.NewInput(rand.New(rand.NewSource(3)), 24)
		want := classic.Forward(in)
		for vname, opener := range variants {
			cfgV := cfg
			cfgV.Tables = opener
			mv, err := New(cfgV, seed)
			if err != nil {
				t.Fatalf("%s/%s: %v", name, vname, err)
			}
			bitsEqual(t, name+"/"+vname, want, mv.Forward(in))
			if err := mv.Close(); err != nil {
				t.Fatalf("%s/%s: Close: %v", name, vname, err)
			}
		}
	}
}

// The per-row-seeded family (the production at-scale path) must be
// self-consistent: dense, synth, mmap, and cached backends all produce the
// same model output bit-for-bit.
func TestPerRowStoreBackendsBitIdentical(t *testing.T) {
	const seed, rows = 11, 257
	cfg := scaled(t, "DLRM-RMC1", rows)
	dir := t.TempDir()
	for table := 0; table < cfg.NumTables; table++ {
		if _, err := embstore.Generate(dir, seed, table, rows, cfg.EmbDim, embstore.Shard{}, nil); err != nil {
			t.Fatal(err)
		}
	}

	open := func(spec string) TableOpener {
		sp, err := embstore.ParseSpec(spec)
		if err != nil {
			t.Fatal(err)
		}
		return func(table, rws, dim int, _ *rand.Rand, sd int64) (nn.RowStore, error) {
			return sp.Open(sd, table, rws, dim, embstore.Shard{})
		}
	}

	var want *tensor.Tensor
	var in *Input
	for _, spec := range []string{"dense", "synth", "mmap:" + dir, "synth,cache=lru:64", "mmap:" + dir + ",cache=lfu:16KB"} {
		cfgV := cfg
		cfgV.Tables = open(spec)
		m, err := New(cfgV, seed)
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		if in == nil {
			in = m.NewInput(rand.New(rand.NewSource(5)), 16)
			want = m.Forward(in)
		} else {
			bitsEqual(t, spec, want, m.Forward(in))
		}
		if _, ok := m.EmbStats(); !ok {
			t.Errorf("%s: store-backed model reports no embedding stats", spec)
		}
		m.Close()
	}
}

// A sharded replica serves a narrowed row range: the store presents the
// shard's rows, TableRows() reflects it, and generated indices stay within
// the shard.
func TestShardedStoreNarrowsDraws(t *testing.T) {
	const seed, rows, shards = 13, 240, 3
	cfg := scaled(t, "DLRM-RMC1", rows)
	for idx := 0; idx < shards; idx++ {
		sh := embstore.Shard{Index: idx, Count: shards}
		cfgV := cfg
		cfgV.Tables = func(table, rws, dim int, _ *rand.Rand, sd int64) (nn.RowStore, error) {
			return embstore.NewSynth(sd, table, rws, dim, sh)
		}
		m, err := New(cfgV, seed)
		if err != nil {
			t.Fatal(err)
		}
		_, n := sh.Range(rows)
		if m.TableRows() != n {
			t.Fatalf("shard %d: TableRows() = %d, want %d", idx, m.TableRows(), n)
		}
		in := m.NewInput(rand.New(rand.NewSource(1)), 8)
		for t2, perItem := range in.Sparse {
			for _, idxs := range perItem {
				for _, ix := range idxs {
					if ix < 0 || ix >= n {
						t.Fatalf("shard %d table %d drew index %d outside [0,%d)", idx, t2, ix, n)
					}
				}
			}
		}
		if err := m.ValidateInput(in); err != nil {
			t.Fatalf("shard %d: generated input invalid: %v", idx, err)
		}
		m.Forward(in) // must not panic
		m.Close()
	}
}

func TestWithTableScale(t *testing.T) {
	cfg, err := ByName("DLRM-RMC1")
	if err != nil {
		t.Fatal(err)
	}
	same, err := cfg.WithTableScale(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if same.TableRows != DefaultTableRows || same.LookupsPerTable != cfg.LookupsPerTable {
		t.Fatalf("zero scale changed geometry: %+v", same)
	}
	up, err := cfg.WithTableScale(1_000_000, 40)
	if err != nil {
		t.Fatal(err)
	}
	if up.TableRows != 1_000_000 || up.LookupsPerTable != 40 {
		t.Fatalf("scale not applied: rows %d lookups %d", up.TableRows, up.LookupsPerTable)
	}
	if cfg.TableRows != DefaultTableRows {
		t.Fatal("WithTableScale mutated the receiver")
	}
	if _, err := cfg.WithTableScale(-1, 0); err == nil {
		t.Error("negative rows accepted")
	}
	if _, err := cfg.WithTableScale(0, -2); err == nil {
		t.Error("negative lookups accepted")
	}
	noTables := Config{Name: "dense-only", DenseInDim: 8, PredictFC: []int{4}, NumTasks: 1, SLAMedium: cfg.SLAMedium}
	if _, err := noTables.WithTableScale(100, 0); err == nil {
		t.Error("table scale accepted on a model without tables")
	}
}

// Satellite regression: an out-of-range sparse index surfaces as a typed
// *nn.IndexError from input validation — and the scaled-geometry path keeps
// errors aligned with the effective row count.
func TestValidateInputOutOfRange(t *testing.T) {
	m := MustNew(scaled(t, "DLRM-RMC1", 50), 1)
	in := m.NewInput(rand.New(rand.NewSource(2)), 4)
	if err := m.ValidateInput(in); err != nil {
		t.Fatalf("generated input invalid: %v", err)
	}
	in.Sparse[5][2][7] = 50 // one past the scaled table's last row
	err := m.ValidateInput(in)
	if err == nil {
		t.Fatal("corrupt index passed validation")
	}
	var ie *nn.IndexError
	if !errors.As(err, &ie) {
		t.Fatalf("error %v does not wrap *nn.IndexError", err)
	}
	if ie.Table != 5 || ie.Index != 50 || ie.Rows != 50 {
		t.Fatalf("IndexError = %+v, want table 5 index 50 rows 50", ie)
	}
	if !strings.Contains(err.Error(), "table 5") {
		t.Fatalf("error message %q does not name the table", err)
	}
}

// NewInputSampled must consume src draws in the documented order and place
// them verbatim.
func TestNewInputSampledOrder(t *testing.T) {
	m := MustNew(scaled(t, "DLRM-RMC1", 1000), 1)
	src := &countingSource{}
	in := m.NewInputSampled(nil, rand.New(rand.NewSource(4)), 3, src)
	want := 0
	for t2 := range in.Sparse {
		for i := range in.Sparse[t2] {
			for j := range in.Sparse[t2][i] {
				if in.Sparse[t2][i][j] != want%1000 {
					t.Fatalf("table %d item %d lookup %d = %d, want %d", t2, i, j, in.Sparse[t2][i][j], want%1000)
				}
				want++
			}
		}
	}
	if src.n != want {
		t.Fatalf("source consumed %d draws, structure has %d lookups", src.n, want)
	}
}

type countingSource struct{ n int }

func (c *countingSource) Next() int { v := c.n % 1000; c.n++; return v }
