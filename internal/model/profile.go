package model

// Profile is the per-item operator accounting of one model configuration.
// It is the interface between the model zoo and the hardware performance
// models: internal/platform converts these FLOP and byte counts into
// service times, and internal/trace renders them as the paper's
// characterization figures (arithmetic intensity for Fig. 1, operator
// breakdown for Fig. 3).
type Profile struct {
	Name  string
	Class Bottleneck

	// DenseFLOPs counts the Dense-FC stack (regular, batch-friendly GEMM).
	DenseFLOPs int64
	// PredictFLOPs counts all predictor stacks (regular GEMM).
	PredictFLOPs int64
	// AttnFLOPs counts attention scorer work over sequence positions
	// (small GEMMs; batches poorly because sequences are per-item).
	AttnFLOPs int64
	// GRUFLOPs counts recurrent work (strictly serial over positions).
	GRUFLOPs int64
	// EmbBytes counts irregular embedding-gather traffic per item.
	EmbBytes int64
	// DenseBytes counts streaming input traffic per item (dense features).
	DenseBytes int64
	// MLPWeightBytes is the resident parameter footprint of all FC stacks,
	// the working set the cache-contention model cares about.
	MLPWeightBytes int64
	// InputBytes is the wire size of one item's features, the unit of
	// host-to-accelerator transfer in the GPU model.
	InputBytes int64
}

// MLPFLOPs returns the batch-friendly GEMM FLOPs per item (dense + predict
// stacks), the portion of compute that benefits from SIMD and batching.
func (p Profile) MLPFLOPs() int64 { return p.DenseFLOPs + p.PredictFLOPs }

// TotalFLOPs returns all floating-point work per item.
func (p Profile) TotalFLOPs() int64 {
	return p.DenseFLOPs + p.PredictFLOPs + p.AttnFLOPs + p.GRUFLOPs
}

// TotalBytes returns all memory traffic per item (embedding gathers plus
// dense feature streaming).
func (p Profile) TotalBytes() int64 { return p.EmbBytes + p.DenseBytes }

// ArithmeticIntensity returns FLOPs per byte of memory traffic, the x-axis
// of the paper's Fig. 1 roofline. Models below ~1 FLOP/byte are memory
// bound on every platform the paper considers.
func (p Profile) ArithmeticIntensity() float64 {
	b := p.TotalBytes()
	if b == 0 {
		return 0
	}
	return float64(p.TotalFLOPs()) / float64(b)
}

// BuildProfile computes the per-item operator accounting of a configuration
// without instantiating weights. The arithmetic mirrors the layer
// definitions in internal/nn; TestProfileMatchesModel cross-checks it
// against an instantiated model.
func BuildProfile(cfg Config) Profile {
	p := Profile{Name: cfg.Name, Class: cfg.Class}

	// Dense stack.
	if cfg.DenseInDim > 0 {
		p.DenseBytes = int64(cfg.DenseInDim) * 4
		p.InputBytes += int64(cfg.DenseInDim) * 4
		if len(cfg.DenseFC) > 0 {
			prev := cfg.DenseInDim
			for _, w := range cfg.DenseFC {
				p.DenseFLOPs += 2*int64(prev)*int64(w) + int64(w)
				p.MLPWeightBytes += 4 * (int64(prev)*int64(w) + int64(w))
				prev = w
			}
		}
	}

	// Embedding traffic: every lookup streams one EmbDim float32 vector.
	if cfg.NumTables > 0 {
		plainLookups := int64(cfg.plainTables()) * int64(cfg.LookupsPerTable)
		seqLookups := int64(cfg.SeqTables) * int64(cfg.SeqLen)
		p.EmbBytes = (plainLookups + seqLookups) * int64(cfg.EmbDim) * 4
		// Sparse inputs on the wire: one 4-byte index per lookup.
		p.InputBytes += (plainLookups + seqLookups) * 4
	}

	// GMF elementwise product.
	if cfg.UseGMF {
		p.PredictFLOPs += int64(cfg.EmbDim)
	}

	// Attention scorer over sequence positions.
	if cfg.SeqPool != SeqNone {
		scorer := attentionScorerFLOPs(cfg.EmbDim, cfg.AttentionHidden)
		perPos := int64(cfg.EmbDim) + scorer + 2*int64(cfg.EmbDim)
		p.AttnFLOPs += int64(cfg.SeqTables) * int64(cfg.SeqLen) * perPos
		p.MLPWeightBytes += attentionScorerBytes(cfg.EmbDim, cfg.AttentionHidden)
	}

	// AUGRU recurrence.
	if cfg.SeqPool == SeqAUGRU {
		perStep := gruStepFLOPs(cfg.EmbDim, cfg.GRUHidden)
		p.GRUFLOPs += int64(cfg.SeqTables) * int64(cfg.SeqLen) * perStep
		p.MLPWeightBytes += gruWeightBytes(cfg.EmbDim, cfg.GRUHidden)
	}

	// Predictor stacks.
	prev := cfg.InteractionDim()
	var perTask int64
	var perTaskBytes int64
	for _, w := range append(append([]int{}, cfg.PredictFC...), 1) {
		perTask += 2*int64(prev)*int64(w) + int64(w)
		perTaskBytes += 4 * (int64(prev)*int64(w) + int64(w))
		prev = w
	}
	p.PredictFLOPs += int64(cfg.NumTasks) * perTask
	p.MLPWeightBytes += int64(cfg.NumTasks) * perTaskBytes

	return p
}

// attentionScorerFLOPs mirrors nn.MLP FLOP accounting for the DIN scorer
// (3·dim → hidden → 1).
func attentionScorerFLOPs(dim, hidden int) int64 {
	in := int64(3 * dim)
	h := int64(hidden)
	return (2*in*h + h) + (2*h*1 + 1)
}

func attentionScorerBytes(dim, hidden int) int64 {
	in := int64(3 * dim)
	h := int64(hidden)
	return 4 * ((in*h + h) + (h*1 + 1))
}

// gruStepFLOPs mirrors nn.GRUCell.FLOPsPerStepPerItem.
func gruStepFLOPs(in, hidden int) int64 {
	return 2*int64(in)*int64(hidden)*3 + 2*int64(hidden)*int64(hidden)*3 + 10*int64(hidden)
}

func gruWeightBytes(in, hidden int) int64 {
	return 4 * (3*int64(in)*int64(hidden) + 3*int64(hidden)*int64(hidden) + 3*int64(hidden))
}

// OperatorShare is one slice of the Fig. 3 operator breakdown: the fraction
// of per-item work attributable to one operator group.
type OperatorShare struct {
	Operator string
	Fraction float64
}
