package model

import (
	"fmt"

	"github.com/deeprecinfra/deeprecsys/internal/embstore"
	"github.com/deeprecinfra/deeprecsys/internal/nn"
)

// IndexSource yields one sparse row index per Next call. It is the
// model-side contract for internal/workload's skewed access distributions:
// a source is bound to one rng and one row range and is not safe for
// concurrent use (each worker holds its own).
type IndexSource interface {
	Next() int
}

// TableRows returns the row count the model's embedding tables actually
// serve — Cfg.TableRows in classic mode, the shard's row count when a
// sharded store backs the tables, and 0 for models without tables. Index
// samplers must draw from [0, TableRows()).
func (m *Model) TableRows() int {
	if len(m.bags) == 0 {
		return 0
	}
	return m.bags[0].Table.Rows()
}

// EmbStats aggregates the embedding-store counters (cache hits/misses/
// evictions, bytes read from backing storage) across the model's tables.
// ok is false in classic mode, where the dense in-memory tables have no
// counters to report.
func (m *Model) EmbStats() (st embstore.Stats, ok bool) {
	for _, s := range m.stores {
		if sp, has := s.(interface{ Stats() embstore.Stats }); has {
			st = st.Add(sp.Stats())
			ok = true
		}
	}
	return st, ok
}

// Close releases the model's table backends (file mappings). It is a no-op
// in classic mode; a store-backed model must not serve after Close.
func (m *Model) Close() error {
	return m.closeStores()
}

func (m *Model) closeStores() error {
	var err error
	for _, s := range m.stores {
		if c, ok := s.(interface{ Close() error }); ok {
			if cerr := c.Close(); err == nil {
				err = cerr
			}
		}
	}
	m.stores = nil
	return err
}

// ValidateInput checks in's shape and every sparse index against the
// model's table geometry, returning the first violation as an error
// wrapping *nn.IndexError. The generated-input paths produce valid indices
// by construction; this is the front door for externally-constructed
// batches and for regression tests of the bounds-hardened lookup paths.
func (m *Model) ValidateInput(in *Input) error {
	if in == nil || in.Size <= 0 {
		return fmt.Errorf("model %s: empty input", m.Cfg.Name)
	}
	if len(in.Sparse) != m.Cfg.NumTables {
		return fmt.Errorf("model %s: input has %d sparse features, want %d", m.Cfg.Name, len(in.Sparse), m.Cfg.NumTables)
	}
	for t, perItem := range in.Sparse {
		if len(perItem) != in.Size {
			return fmt.Errorf("model %s: table %d has %d items, want %d", m.Cfg.Name, t, len(perItem), in.Size)
		}
		table := m.bags[t].Table
		for i, idxs := range perItem {
			for _, idx := range idxs {
				if err := table.CheckIndex(idx); err != nil {
					return fmt.Errorf("model %s: item %d: %w", m.Cfg.Name, i, err)
				}
			}
		}
	}
	return nil
}

// ensure nn.RowStore and embstore.Store stay structurally compatible.
var _ nn.RowStore = (embstore.Store)(nil)
