package model

import (
	"fmt"
	"time"

	"github.com/deeprecinfra/deeprecsys/internal/nn"
)

// DefaultTableRows is the zoo's default embedding-table row count: scaled
// down from production (up to ~10^8 rows, tens of GBs per model) so the
// default dense in-memory tables stay tractable. Production-scale row
// counts are a geometry override away — Config.WithTableScale or the
// serve/tables `-rows` flag — typically combined with an at-scale backend
// (Config.Tables, internal/embstore) so the rows never materialize densely.
const DefaultTableRows = 10000

// Zoo returns the eight industry-representative configurations of the
// paper's Table I, in the paper's reporting order. Embedding-table row
// counts default to the scaled-down DefaultTableRows; per-item lookup
// counts and vector dimensions — the parameters that determine memory
// traffic per inference — follow Table I. SLA targets and bottleneck
// classes follow Table II.
func Zoo() []Config {
	return []Config{
		{
			Name: "DLRM-RMC1", Company: "Facebook", Domain: "social media",
			DenseInDim: 128, DenseFC: []int{256, 128, 32},
			NumTables: 8, TableRows: DefaultTableRows, LookupsPerTable: 80, EmbDim: 32, Pool: nn.PoolSum,
			PredictFC: []int{256, 64}, NumTasks: 1,
			Class: EmbeddingDominated, SLAMedium: 100 * time.Millisecond,
		},
		{
			Name: "DLRM-RMC2", Company: "Facebook", Domain: "social media",
			DenseInDim: 128, DenseFC: []int{256, 128, 32},
			NumTables: 32, TableRows: DefaultTableRows, LookupsPerTable: 80, EmbDim: 32, Pool: nn.PoolSum,
			PredictFC: []int{512, 128}, NumTasks: 1,
			Class: EmbeddingDominated, SLAMedium: 400 * time.Millisecond,
		},
		{
			Name: "DLRM-RMC3", Company: "Facebook", Domain: "social media",
			DenseInDim: 256, DenseFC: []int{2560, 512, 32},
			NumTables: 10, TableRows: DefaultTableRows, LookupsPerTable: 20, EmbDim: 32, Pool: nn.PoolSum,
			PredictFC: []int{512, 128}, NumTasks: 1,
			Class: MLPDominated, SLAMedium: 100 * time.Millisecond,
		},
		{
			Name: "NCF", Company: "-", Domain: "movies",
			NumTables: 4, TableRows: DefaultTableRows, LookupsPerTable: 1, EmbDim: 64, Pool: nn.PoolConcat,
			PredictFC: []int{256, 256, 128}, NumTasks: 1, UseGMF: true,
			Class: MLPDominated, SLAMedium: 5 * time.Millisecond,
		},
		{
			Name: "WnD", Company: "Google", Domain: "play store",
			DenseInDim: 1000, // raw dense features bypass the Dense-FC stack
			NumTables:  20, TableRows: DefaultTableRows, LookupsPerTable: 1, EmbDim: 32, Pool: nn.PoolConcat,
			PredictFC: []int{1024, 512, 256}, NumTasks: 1,
			Class: MLPDominated, SLAMedium: 25 * time.Millisecond,
		},
		{
			Name: "MT-WnD", Company: "Google", Domain: "youtube",
			DenseInDim: 1000,
			NumTables:  20, TableRows: DefaultTableRows, LookupsPerTable: 1, EmbDim: 32, Pool: nn.PoolConcat,
			// The paper's MT-WnD evaluates N parallel objective heads; we
			// size N=3 so the model remains servable within its 25 ms SLA
			// on this slower pure-Go substrate (see docs/DESIGN.md).
			PredictFC: []int{1024, 512, 256}, NumTasks: 3,
			Class: MLPDominated, SLAMedium: 25 * time.Millisecond,
		},
		{
			Name: "DIN", Company: "Alibaba", Domain: "e-commerce",
			NumTables: 16, TableRows: DefaultTableRows, LookupsPerTable: 1, EmbDim: 32, Pool: nn.PoolConcat,
			SeqPool: SeqAttention, SeqTables: 4, SeqLen: 150, AttentionHidden: 36,
			PredictFC: []int{200, 80}, NumTasks: 1,
			// Table II lists DIN as "Embedding + Attention dominated";
			// Fig. 11 groups it with the attention-dominated family.
			Class: AttentionDominated, SLAMedium: 100 * time.Millisecond,
		},
		{
			Name: "DIEN", Company: "Alibaba", Domain: "e-commerce",
			NumTables: 16, TableRows: DefaultTableRows, LookupsPerTable: 1, EmbDim: 32, Pool: nn.PoolConcat,
			SeqPool: SeqAUGRU, SeqTables: 2, SeqLen: 20, AttentionHidden: 36, GRUHidden: 32,
			PredictFC: []int{200, 80}, NumTasks: 1,
			Class: AttentionDominated, SLAMedium: 35 * time.Millisecond,
		},
	}
}

// ZooNames returns the model names in Zoo order.
func ZooNames() []string {
	cfgs := Zoo()
	names := make([]string, len(cfgs))
	for i, c := range cfgs {
		names[i] = c.Name
	}
	return names
}

// ByName returns the zoo configuration with the given name.
func ByName(name string) (Config, error) {
	for _, c := range Zoo() {
		if c.Name == name {
			return c, nil
		}
	}
	return Config{}, fmt.Errorf("model: no zoo entry named %q (have %v)", name, ZooNames())
}
