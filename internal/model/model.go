package model

import (
	"fmt"
	"math/rand"
	"sync"

	"github.com/deeprecinfra/deeprecsys/internal/nn"
	"github.com/deeprecinfra/deeprecsys/internal/par"
	"github.com/deeprecinfra/deeprecsys/internal/tensor"
)

// Model is an executable instance of a Config: the paper's generalized
// recommendation architecture (Fig. 2) with a dense-feature DNN stack,
// embedding tables with pooling, optional sequence modeling (attention /
// AUGRU), feature interaction by concatenation, and one predictor stack per
// task producing click-through-rate probabilities.
type Model struct {
	Cfg Config

	dense      *nn.MLP
	bags       []*nn.EmbeddingBag
	attention  *nn.Attention
	gru        *nn.GRU
	predictors []*nn.MLP

	// stores holds the at-scale table backends when Cfg.Tables is set
	// (store mode), for stats aggregation and Close. Empty in classic mode.
	stores []nn.RowStore

	// scratchPool backs the allocating Forward wrapper so callers without
	// their own per-worker Scratch still run the arena path.
	scratchPool sync.Pool
}

// New constructs a model with deterministically-seeded weights. It returns
// an error for invalid configurations.
func New(cfg Config, seed int64) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	m := &Model{Cfg: cfg}
	m.scratchPool.New = func() any { return NewScratch() }

	if cfg.DenseInDim > 0 && len(cfg.DenseFC) > 0 {
		m.dense = nn.NewMLP(rng, append([]int{cfg.DenseInDim}, cfg.DenseFC...), nn.ReLU, nn.ReLU)
	}
	m.bags = make([]*nn.EmbeddingBag, cfg.NumTables)
	for i := range m.bags {
		pool := cfg.Pool
		if m.isSeqTable(i) {
			// Sequence tables gather raw vectors; pooling happens in the
			// attention / AUGRU stage, so the bag's own pool is unused.
			pool = nn.PoolSum
		}
		if cfg.Tables == nil {
			m.bags[i] = nn.NewEmbeddingBag(rng, cfg.TableRows, cfg.EmbDim, pool)
			m.bags[i].Table.ID = i
			continue
		}
		st, err := cfg.Tables(i, cfg.TableRows, cfg.EmbDim, rng, seed)
		if err != nil {
			m.closeStores()
			return nil, fmt.Errorf("model %s: opening table %d: %w", cfg.Name, i, err)
		}
		if st.Dim() != cfg.EmbDim || st.Rows() < 1 || st.Rows() > cfg.TableRows {
			m.closeStores()
			return nil, fmt.Errorf("model %s: table %d store serves %d x %d, config wants <=%d x %d", cfg.Name, i, st.Rows(), st.Dim(), cfg.TableRows, cfg.EmbDim)
		}
		m.stores = append(m.stores, st)
		m.bags[i] = &nn.EmbeddingBag{Table: nn.NewStoreEmbeddingTable(i, st), Pool: pool}
	}
	if cfg.SeqPool != SeqNone {
		m.attention = nn.NewAttention(rng, cfg.EmbDim, cfg.AttentionHidden)
	}
	if cfg.SeqPool == SeqAUGRU {
		m.gru = nn.NewGRU(rng, cfg.EmbDim, cfg.GRUHidden)
	}
	predictSizes := append([]int{cfg.InteractionDim()}, cfg.PredictFC...)
	predictSizes = append(predictSizes, 1) // CTR head
	m.predictors = make([]*nn.MLP, cfg.NumTasks)
	for i := range m.predictors {
		m.predictors[i] = nn.NewMLP(rng, predictSizes, nn.ReLU, nn.Sigmoid)
	}
	return m, nil
}

// MustNew is New for static configurations known to be valid; it panics on
// error and is intended for the built-in zoo and tests.
func MustNew(cfg Config, seed int64) *Model {
	m, err := New(cfg, seed)
	if err != nil {
		panic(err)
	}
	return m
}

// isSeqTable reports whether table i holds behaviour sequences. Sequence
// tables occupy indices [2, 2+SeqTables): table 0 is the user feature and
// table 1 the candidate-item feature whose embedding serves as the
// attention query.
func (m *Model) isSeqTable(i int) bool {
	return m.Cfg.SeqPool != SeqNone && i >= 2 && i < 2+m.Cfg.SeqTables
}

// Input is one inference batch: Size candidate items for one user. Dense is
// [Size x DenseInDim] (nil when the model has no continuous features);
// Sparse[t][i] lists the embedding indices of item i in table t.
type Input struct {
	Size   int
	Dense  *tensor.Tensor
	Sparse [][][]int
}

// NewInput draws a random, shape-correct input batch for the model. Index
// draws are uniform; the performance characteristics the simulator models do
// not depend on the index distribution (each lookup touches one random row
// either way), and functional tests only need valid indices.
func (m *Model) NewInput(rng *rand.Rand, size int) *Input {
	return m.NewInputInto(nil, rng, size)
}

// NewInputInto is NewInput refilling the reusable input buffers held by s
// (fresh heap buffers when s is nil): in steady state, drawing a new batch
// of an already-seen size allocates nothing. The RNG is consumed in exactly
// the same order as NewInput, so the two produce identical inputs from
// identical generator states. The returned Input aliases s and is valid
// until the next NewInputInto call on the same Scratch.
func (m *Model) NewInputInto(s *Scratch, rng *rand.Rand, size int) *Input {
	return m.NewInputSampled(s, rng, size, nil)
}

// NewInputSampled is NewInputInto with the sparse-index draws delegated to
// src (a skewed access distribution from internal/workload — Zipf hot-row
// popularity and friends). A nil src draws uniform indices from rng on
// exactly the classic stream, making NewInputInto a zero-cost alias; a
// non-nil src must produce indices within [0, Model.TableRows()) — each
// draw is consumed in the same per-table, per-item, per-lookup order the
// uniform path uses. Dense features always come from rng.
func (m *Model) NewInputSampled(s *Scratch, rng *rand.Rand, size int, src IndexSource) *Input {
	if size <= 0 {
		panic(fmt.Sprintf("model: input size must be positive, got %d", size))
	}
	in := &Input{}
	if s != nil {
		if s.input == nil {
			s.input = in
		}
		in = s.input
	}
	in.Size = size

	if d := m.Cfg.DenseInDim; d > 0 {
		if in.Dense == nil || cap(in.Dense.Data) < size*d {
			in.Dense = &tensor.Tensor{Rows: size, Cols: d, Data: make([]float32, size*d)}
		} else {
			in.Dense.Rows, in.Dense.Cols = size, d
			in.Dense.Data = in.Dense.Data[:size*d]
		}
		for i := range in.Dense.Data {
			// Matches tensor.RandUniform(rng, size, d, 1) draw for draw.
			in.Dense.Data[i] = rng.Float32()*2 - 1
		}
	} else {
		in.Dense = nil
	}

	nt := m.Cfg.NumTables
	if cap(in.Sparse) >= nt {
		in.Sparse = in.Sparse[:nt]
	} else {
		grown := make([][][]int, nt)
		copy(grown, in.Sparse)
		in.Sparse = grown
	}
	for t := range in.Sparse {
		lookups := m.Cfg.LookupsPerTable
		if m.isSeqTable(t) {
			lookups = m.Cfg.SeqLen
		}
		// In classic mode this is Cfg.TableRows; a sharded store narrows
		// the draw range to the rows this replica actually serves.
		rows := m.bags[t].Table.Rows()
		perItem := in.Sparse[t]
		if cap(perItem) >= size {
			perItem = perItem[:size]
		} else {
			grown := make([][]int, size)
			copy(grown, perItem[:cap(perItem)])
			perItem = grown
		}
		for i := range perItem {
			idxs := perItem[i]
			if cap(idxs) >= lookups {
				idxs = idxs[:lookups]
			} else {
				idxs = make([]int, lookups)
			}
			if src != nil {
				for j := range idxs {
					idxs[j] = src.Next()
				}
			} else {
				for j := range idxs {
					idxs[j] = rng.Intn(rows)
				}
			}
			perItem[i] = idxs
		}
		in.Sparse[t] = perItem
	}
	return in
}

// Slice returns a view of items [lo, hi) of the batch: the dense rows and
// per-table index lists alias the original input. It is the row-splitting
// primitive behind ForwardSplit.
func (in *Input) Slice(lo, hi int) *Input {
	if lo < 0 || hi > in.Size || lo >= hi {
		panic(fmt.Sprintf("model: invalid input slice [%d, %d) of %d", lo, hi, in.Size))
	}
	s := &Input{Size: hi - lo}
	if in.Dense != nil {
		c := in.Dense.Cols
		s.Dense = tensor.FromSlice(hi-lo, c, in.Dense.Data[lo*c:hi*c])
	}
	s.Sparse = make([][][]int, len(in.Sparse))
	for t := range in.Sparse {
		s.Sparse[t] = in.Sparse[t][lo:hi]
	}
	return s
}

// Forward computes CTR probabilities for every (user, item) pair in the
// batch. The result is [Size x 1]: the probability for each candidate item.
// For multi-task models the task outputs are averaged, matching the use of
// MT-WnD's objectives as a combined ranking score.
//
// Forward is a thin wrapper over ForwardInto on a pooled Scratch, so it is
// safe for concurrent use and produces bit-identical results; hot paths
// hold their own per-worker Scratch and call ForwardInto directly.
func (m *Model) Forward(in *Input) *tensor.Tensor {
	s := m.scratchPool.Get().(*Scratch)
	out := m.ForwardInto(s, in).Clone()
	m.scratchPool.Put(s)
	return out
}

// ForwardInto is Forward with every intermediate — pooled embeddings,
// attention scratch, GRU state, FC activations — allocated from the
// scratch's arena: in steady state the pass is allocation-free. The
// returned [Size x 1] tensor aliases the arena and is valid until the next
// ForwardInto call on the same Scratch; Clone it to retain it.
func (m *Model) ForwardInto(s *Scratch, in *Input) *tensor.Tensor {
	s.ar.Reset()
	ar := &s.ar
	features := m.assembleFeatures(s, in)
	out := m.predictors[0].ForwardInto(ar, features)
	if len(m.predictors) > 1 {
		for _, p := range m.predictors[1:] {
			out.AddInPlace(p.ForwardInto(ar, features))
		}
		out.Scale(1 / float32(len(m.predictors)))
	}
	return out
}

// ForwardMaybeSplit is the one place the intra-query split policy lives:
// it fans out through ForwardSplit when more than one scratch is provided
// and the batch has at least 2·MinSplitRows rows, and runs a plain
// ForwardInto on scratches[0] otherwise. The live CPU lane and the offline
// RealEngine both route through it, so they cannot diverge on when to
// parallelize. Like ForwardInto, the serial path's result aliases
// scratches[0]'s arena.
func (m *Model) ForwardMaybeSplit(scratches []*Scratch, in *Input) *tensor.Tensor {
	if parts := in.Size / MinSplitRows; len(scratches) > 1 && parts >= 2 {
		return m.ForwardSplit(scratches, in, parts)
	}
	return m.ForwardInto(scratches[0], in)
}

// ForwardSplit computes Forward over row-disjoint slices of the batch on up
// to parts goroutines via the internal/par pool, one Scratch per part — the
// intra-query parallelism knob for big-batch queries. Every operator in the
// forward pass is row-independent, so the assembled output is bit-identical
// to a single ForwardInto over the whole batch. The result is freshly
// heap-allocated (it outlives the per-part scratches).
func (m *Model) ForwardSplit(scratches []*Scratch, in *Input, parts int) *tensor.Tensor {
	if parts > len(scratches) {
		parts = len(scratches)
	}
	if parts > in.Size {
		parts = in.Size
	}
	if parts <= 1 {
		return m.ForwardInto(scratches[0], in).Clone()
	}
	out := tensor.New(in.Size, 1)
	chunk := (in.Size + parts - 1) / parts
	bounds := make([]int, 0, parts)
	for lo := 0; lo < in.Size; lo += chunk {
		bounds = append(bounds, lo)
	}
	par.Map(len(bounds), bounds, func(lo int) struct{} {
		hi := lo + chunk
		if hi > in.Size {
			hi = in.Size
		}
		res := m.ForwardInto(scratches[lo/chunk], in.Slice(lo, hi))
		copy(out.Data[lo:hi], res.Data)
		return struct{}{}
	})
	return out
}

// assembleFeatures runs the dense and sparse paths and concatenates their
// outputs into the predictor input (the feature-interaction step). All
// intermediates come from the scratch arena; the slice headers tracking
// feature parts and behaviour sequences are reused across calls.
func (m *Model) assembleFeatures(s *Scratch, in *Input) *tensor.Tensor {
	if len(in.Sparse) != m.Cfg.NumTables {
		panic(fmt.Sprintf("model %s: input has %d sparse features, want %d", m.Cfg.Name, len(in.Sparse), m.Cfg.NumTables))
	}
	ar := &s.ar
	parts := s.parts[:0]

	if m.Cfg.DenseInDim > 0 {
		if in.Dense == nil {
			panic(fmt.Sprintf("model %s: missing dense input", m.Cfg.Name))
		}
		if m.dense != nil {
			parts = append(parts, m.dense.ForwardInto(ar, in.Dense))
		} else {
			parts = append(parts, in.Dense) // WnD passthrough
		}
	}

	if m.Cfg.UseGMF {
		u := m.bags[0].ForwardInto(ar, in.Sparse[0])
		v := m.bags[1].ForwardInto(ar, in.Sparse[1])
		parts = append(parts, tensor.MulInto(u, u, v)) // u is dead after this
	}

	var query *tensor.Tensor
	for t := 0; t < m.Cfg.NumTables; t++ {
		if m.isSeqTable(t) {
			continue
		}
		if m.Cfg.UseGMF && t < 2 {
			continue
		}
		pooled := m.bags[t].ForwardInto(ar, in.Sparse[t])
		if t == 1 && m.Cfg.SeqPool != SeqNone {
			query = pooled
		}
		parts = append(parts, pooled)
	}

	if m.Cfg.SeqPool != SeqNone {
		if query == nil {
			panic(fmt.Sprintf("model %s: sequence pooling without item query table", m.Cfg.Name))
		}
		for t := 2; t < 2+m.Cfg.SeqTables; t++ {
			history := s.history[:0]
			for i := 0; i < in.Size; i++ {
				history = append(history, m.bags[t].Table.LookupInto(ar, in.Sparse[t][i]))
			}
			s.history = history
			switch m.Cfg.SeqPool {
			case SeqAttention:
				parts = append(parts, m.attention.ForwardInto(ar, query, history))
			case SeqAUGRU:
				s.scores = m.attention.ScoresInto(ar, s.scores, query, history)
				parts = append(parts, m.gru.ForwardWeightedInto(ar, history, s.scores))
			}
		}
	}

	s.parts = parts
	width := 0
	for _, p := range parts {
		width += p.Cols
	}
	if width != m.Cfg.InteractionDim() {
		panic(fmt.Sprintf("model %s: assembled %d features, config promises %d", m.Cfg.Name, width, m.Cfg.InteractionDim()))
	}
	return tensor.ConcatInto(ar.NewTensorUninit(in.Size, width), parts...)
}
