package model

import (
	"fmt"
	"math/rand"

	"github.com/deeprecinfra/deeprecsys/internal/nn"
	"github.com/deeprecinfra/deeprecsys/internal/tensor"
)

// Model is an executable instance of a Config: the paper's generalized
// recommendation architecture (Fig. 2) with a dense-feature DNN stack,
// embedding tables with pooling, optional sequence modeling (attention /
// AUGRU), feature interaction by concatenation, and one predictor stack per
// task producing click-through-rate probabilities.
type Model struct {
	Cfg Config

	dense      *nn.MLP
	bags       []*nn.EmbeddingBag
	attention  *nn.Attention
	gru        *nn.GRU
	predictors []*nn.MLP
}

// New constructs a model with deterministically-seeded weights. It returns
// an error for invalid configurations.
func New(cfg Config, seed int64) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	m := &Model{Cfg: cfg}

	if cfg.DenseInDim > 0 && len(cfg.DenseFC) > 0 {
		m.dense = nn.NewMLP(rng, append([]int{cfg.DenseInDim}, cfg.DenseFC...), nn.ReLU, nn.ReLU)
	}
	m.bags = make([]*nn.EmbeddingBag, cfg.NumTables)
	for i := range m.bags {
		pool := cfg.Pool
		if m.isSeqTable(i) {
			// Sequence tables gather raw vectors; pooling happens in the
			// attention / AUGRU stage, so the bag's own pool is unused.
			pool = nn.PoolSum
		}
		m.bags[i] = nn.NewEmbeddingBag(rng, cfg.TableRows, cfg.EmbDim, pool)
	}
	if cfg.SeqPool != SeqNone {
		m.attention = nn.NewAttention(rng, cfg.EmbDim, cfg.AttentionHidden)
	}
	if cfg.SeqPool == SeqAUGRU {
		m.gru = nn.NewGRU(rng, cfg.EmbDim, cfg.GRUHidden)
	}
	predictSizes := append([]int{cfg.InteractionDim()}, cfg.PredictFC...)
	predictSizes = append(predictSizes, 1) // CTR head
	m.predictors = make([]*nn.MLP, cfg.NumTasks)
	for i := range m.predictors {
		m.predictors[i] = nn.NewMLP(rng, predictSizes, nn.ReLU, nn.Sigmoid)
	}
	return m, nil
}

// MustNew is New for static configurations known to be valid; it panics on
// error and is intended for the built-in zoo and tests.
func MustNew(cfg Config, seed int64) *Model {
	m, err := New(cfg, seed)
	if err != nil {
		panic(err)
	}
	return m
}

// isSeqTable reports whether table i holds behaviour sequences. Sequence
// tables occupy indices [2, 2+SeqTables): table 0 is the user feature and
// table 1 the candidate-item feature whose embedding serves as the
// attention query.
func (m *Model) isSeqTable(i int) bool {
	return m.Cfg.SeqPool != SeqNone && i >= 2 && i < 2+m.Cfg.SeqTables
}

// Input is one inference batch: Size candidate items for one user. Dense is
// [Size x DenseInDim] (nil when the model has no continuous features);
// Sparse[t][i] lists the embedding indices of item i in table t.
type Input struct {
	Size   int
	Dense  *tensor.Tensor
	Sparse [][][]int
}

// NewInput draws a random, shape-correct input batch for the model. Index
// draws are uniform; the performance characteristics the simulator models do
// not depend on the index distribution (each lookup touches one random row
// either way), and functional tests only need valid indices.
func (m *Model) NewInput(rng *rand.Rand, size int) *Input {
	if size <= 0 {
		panic(fmt.Sprintf("model: input size must be positive, got %d", size))
	}
	in := &Input{Size: size}
	if m.Cfg.DenseInDim > 0 {
		in.Dense = tensor.RandUniform(rng, size, m.Cfg.DenseInDim, 1)
	}
	in.Sparse = make([][][]int, m.Cfg.NumTables)
	for t := range in.Sparse {
		lookups := m.Cfg.LookupsPerTable
		if m.isSeqTable(t) {
			lookups = m.Cfg.SeqLen
		}
		perItem := make([][]int, size)
		for i := range perItem {
			idxs := make([]int, lookups)
			for j := range idxs {
				idxs[j] = rng.Intn(m.Cfg.TableRows)
			}
			perItem[i] = idxs
		}
		in.Sparse[t] = perItem
	}
	return in
}

// Forward computes CTR probabilities for every (user, item) pair in the
// batch. The result is [Size x 1]: the probability for each candidate item.
// For multi-task models the task outputs are averaged, matching the use of
// MT-WnD's objectives as a combined ranking score.
func (m *Model) Forward(in *Input) *tensor.Tensor {
	features := m.assembleFeatures(in)
	out := m.predictors[0].Forward(features)
	if len(m.predictors) > 1 {
		for _, p := range m.predictors[1:] {
			out.AddInPlace(p.Forward(features))
		}
		out.Scale(1 / float32(len(m.predictors)))
	}
	return out
}

// assembleFeatures runs the dense and sparse paths and concatenates their
// outputs into the predictor input (the feature-interaction step).
func (m *Model) assembleFeatures(in *Input) *tensor.Tensor {
	if len(in.Sparse) != m.Cfg.NumTables {
		panic(fmt.Sprintf("model %s: input has %d sparse features, want %d", m.Cfg.Name, len(in.Sparse), m.Cfg.NumTables))
	}
	parts := make([]*tensor.Tensor, 0, m.Cfg.NumTables+2)

	if m.Cfg.DenseInDim > 0 {
		if in.Dense == nil {
			panic(fmt.Sprintf("model %s: missing dense input", m.Cfg.Name))
		}
		if m.dense != nil {
			parts = append(parts, m.dense.Forward(in.Dense))
		} else {
			parts = append(parts, in.Dense) // WnD passthrough
		}
	}

	if m.Cfg.UseGMF {
		u := m.bags[0].Forward(in.Sparse[0])
		v := m.bags[1].Forward(in.Sparse[1])
		parts = append(parts, tensor.Mul(u, v))
	}

	var query *tensor.Tensor
	for t := 0; t < m.Cfg.NumTables; t++ {
		if m.isSeqTable(t) {
			continue
		}
		if m.Cfg.UseGMF && t < 2 {
			continue
		}
		pooled := m.bags[t].Forward(in.Sparse[t])
		if t == 1 && m.Cfg.SeqPool != SeqNone {
			query = pooled
		}
		parts = append(parts, pooled)
	}

	if m.Cfg.SeqPool != SeqNone {
		if query == nil {
			panic(fmt.Sprintf("model %s: sequence pooling without item query table", m.Cfg.Name))
		}
		for t := 2; t < 2+m.Cfg.SeqTables; t++ {
			history := make([]*tensor.Tensor, in.Size)
			for i := 0; i < in.Size; i++ {
				history[i] = m.bags[t].Table.Lookup(in.Sparse[t][i])
			}
			switch m.Cfg.SeqPool {
			case SeqAttention:
				parts = append(parts, m.attention.Forward(query, history))
			case SeqAUGRU:
				scores := m.attention.Scores(query, history)
				parts = append(parts, m.gru.ForwardWeighted(history, scores))
			}
		}
	}

	features := tensor.Concat(parts...)
	if features.Cols != m.Cfg.InteractionDim() {
		panic(fmt.Sprintf("model %s: assembled %d features, config promises %d", m.Cfg.Name, features.Cols, m.Cfg.InteractionDim()))
	}
	return features
}
