package model

import (
	"github.com/deeprecinfra/deeprecsys/internal/tensor"
)

// Scratch is the per-worker working memory of the real-execution inference
// path. A worker owns one Scratch and passes it to every
// Model.ForwardInto / Model.NewInputInto call; in steady state a forward
// pass then performs no heap allocation — every intermediate tensor comes
// from the scratch arena, reusable slice headers are kept across calls, and
// the input buffers are refilled in place.
//
// Ownership rules (see docs/ARCHITECTURE.md, "The compute stack"):
//
//   - A Scratch must never be shared between goroutines. The live CPU pool
//     allocates one per worker; the offline RealEngine owns one; the
//     accelerator lane draws them from a sync.Pool.
//   - Tensors returned by ForwardInto alias the arena and are valid only
//     until the next ForwardInto call on the same Scratch (which resets the
//     arena). Callers that retain results across calls must Clone them.
//   - Inputs returned by NewInputInto alias buffers owned by the Scratch
//     (not the arena) and are valid until the next NewInputInto call.
type Scratch struct {
	ar tensor.Arena

	// Reused across forward passes to keep assembleFeatures allocation-free.
	parts   []*tensor.Tensor
	history []*tensor.Tensor
	scores  [][]float32

	// Reused input buffers for NewInputInto.
	input *Input
}

// NewScratch returns an empty Scratch; buffers grow to the model's
// steady-state high-water mark over the first few passes.
func NewScratch() *Scratch { return &Scratch{} }

// MinSplitRows is the smallest per-part batch worth fanning out in
// ForwardSplit: below it goroutine handoff outweighs the forward-pass work.
const MinSplitRows = 64

// Arena exposes the scratch's tensor arena for callers composing their own
// arena-allocated operators on top of a forward pass.
func (s *Scratch) Arena() *tensor.Arena { return &s.ar }
