// Package model implements the generalized neural recommendation model of
// the paper's Figure 2 and the eight industry-representative configurations
// of Table I (NCF, Wide&Deep, Multi-Task Wide&Deep, DLRM-RMC1/2/3, DIN,
// DIEN). A Model computes real forward passes over the operator library in
// internal/nn and exposes the per-operator FLOP/byte profile used by the
// characterization experiments and the hardware performance models.
package model

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/deeprecinfra/deeprecsys/internal/nn"
)

// TableOpener opens the row-storage backend for one embedding table when a
// Config runs in at-scale store mode (Config.Tables != nil). It receives
// the table index, the full-table geometry, and the model's base seed;
// internal/embstore backends derive deterministic row content from
// (seed, table, row), so a returned store may serve fewer rows than `rows`
// (a replica's shard) while remaining a consistent slice of the same table.
//
// rng is the model's construction stream positioned exactly where the
// default dense path would draw this table's weights. Production openers
// leave it untouched (their content is per-row seeded); the stream-seeded
// test openers in embstore consume exactly rows*dim NormFloat64 draws to
// reproduce the default weights bit-for-bit.
type TableOpener func(table, rows, dim int, rng *rand.Rand, seed int64) (nn.RowStore, error)

// Bottleneck classifies a model's runtime-dominant operator group, the
// paper's Table II taxonomy.
type Bottleneck int

// Bottleneck classes from Table II.
const (
	EmbeddingDominated Bottleneck = iota
	MLPDominated
	AttentionDominated
)

// String implements fmt.Stringer.
func (b Bottleneck) String() string {
	switch b {
	case EmbeddingDominated:
		return "embedding-dominated"
	case MLPDominated:
		return "MLP-dominated"
	case AttentionDominated:
		return "attention-dominated"
	default:
		return fmt.Sprintf("Bottleneck(%d)", int(b))
	}
}

// SequencePooling selects how a model reduces its multi-hot behaviour
// sequences, distinguishing the three architecture families of the zoo.
type SequencePooling int

// Sequence pooling modes.
const (
	// SeqNone: all sparse features use plain EmbeddingBag pooling.
	SeqNone SequencePooling = iota
	// SeqAttention: DIN-style local activation units weight the sequence.
	SeqAttention
	// SeqAUGRU: DIEN-style attention-weighted GRU over the sequence.
	SeqAUGRU
)

// Config fully describes one recommendation model. The eight Table I
// configurations are provided by the Zoo; custom configurations compose the
// same knobs (the red parameters of the paper's Fig. 2).
type Config struct {
	Name    string
	Company string
	Domain  string

	// Dense (continuous) feature path.
	DenseInDim int   // width of the continuous input vector; 0 = no dense features
	DenseFC    []int // Dense-FC stack widths; empty = passthrough (WnD concatenates raw dense features)

	// Sparse (categorical) feature path.
	NumTables       int        // number of embedding tables
	TableRows       int        // rows per table (scaled-down; see docs/DESIGN.md)
	LookupsPerTable int        // lookups per table per item (Table I "Lookup")
	EmbDim          int        // latent dimension
	Pool            nn.Pooling // pooling for plain (non-sequence) tables

	// Sequence modeling (DIN / DIEN). When SeqPool != SeqNone, tables
	// [2, 2+SeqTables) are treated as behaviour sequences of length SeqLen;
	// table 1 provides the candidate-item query embedding. The remaining
	// tables are one-hot.
	SeqPool         SequencePooling
	SeqTables       int
	SeqLen          int
	AttentionHidden int
	GRUHidden       int

	// Predictor.
	PredictFC []int // Predict-FC stack widths; a final width-1 sigmoid head is appended
	NumTasks  int   // parallel predictor stacks (MT-WnD); min 1

	// GMF: NCF's generalized matrix factorization — elementwise product of
	// the first two table embeddings is concatenated into the interaction.
	UseGMF bool

	// Tables, when non-nil, switches embedding storage to at-scale store
	// mode: each table is opened through this hook (mmap'd files, on-demand
	// synthesis, hot-row caches — internal/embstore) instead of
	// materializing a dense in-memory tensor. Nil keeps the classic path,
	// bit-identical to every release since the seed.
	Tables TableOpener

	// Service characteristics (Table II).
	Class     Bottleneck
	SLAMedium time.Duration
}

// Validate checks internal consistency and returns a descriptive error for
// impossible configurations, so misconfigured experiments fail fast.
func (c *Config) Validate() error {
	if c.Name == "" {
		return fmt.Errorf("model: config missing name")
	}
	if c.NumTables < 0 || c.TableRows <= 0 && c.NumTables > 0 {
		return fmt.Errorf("model %s: invalid table geometry (%d tables, %d rows)", c.Name, c.NumTables, c.TableRows)
	}
	if c.NumTables > 0 && (c.EmbDim <= 0 || c.LookupsPerTable <= 0) {
		return fmt.Errorf("model %s: invalid embedding config (dim %d, lookups %d)", c.Name, c.EmbDim, c.LookupsPerTable)
	}
	if len(c.PredictFC) == 0 {
		return fmt.Errorf("model %s: predictor stack required", c.Name)
	}
	if c.NumTasks < 1 {
		return fmt.Errorf("model %s: NumTasks must be >= 1, got %d", c.Name, c.NumTasks)
	}
	if c.DenseInDim == 0 && c.NumTables == 0 {
		return fmt.Errorf("model %s: needs dense or sparse inputs", c.Name)
	}
	if c.SeqPool != SeqNone {
		if c.SeqTables < 1 || c.SeqLen < 1 {
			return fmt.Errorf("model %s: sequence pooling needs SeqTables/SeqLen >= 1", c.Name)
		}
		if c.NumTables < 2+c.SeqTables {
			return fmt.Errorf("model %s: sequence pooling needs %d tables, have %d", c.Name, 2+c.SeqTables, c.NumTables)
		}
		if c.AttentionHidden < 1 {
			return fmt.Errorf("model %s: sequence pooling needs AttentionHidden >= 1", c.Name)
		}
	}
	if c.SeqPool == SeqAUGRU && c.GRUHidden < 1 {
		return fmt.Errorf("model %s: AUGRU needs GRUHidden >= 1", c.Name)
	}
	if c.UseGMF && c.NumTables < 2 {
		return fmt.Errorf("model %s: GMF needs at least two tables", c.Name)
	}
	if c.SLAMedium <= 0 {
		return fmt.Errorf("model %s: SLA target required", c.Name)
	}
	return nil
}

// WithTableScale returns a copy of the config with its table geometry
// scaled: rows overrides TableRows and lookups overrides LookupsPerTable
// (zero keeps the current value). The scaled config is re-validated, so an
// impossible geometry fails here rather than at model construction. With
// both arguments zero the config is returned unchanged — byte-identical
// defaults.
func (c Config) WithTableScale(rows, lookups int) (Config, error) {
	if rows < 0 || lookups < 0 {
		return c, fmt.Errorf("model %s: negative table scale (rows %d, lookups %d)", c.Name, rows, lookups)
	}
	if rows == 0 && lookups == 0 {
		return c, nil
	}
	if c.NumTables == 0 {
		return c, fmt.Errorf("model %s: table scale on a model without embedding tables", c.Name)
	}
	if rows > 0 {
		c.TableRows = rows
	}
	if lookups > 0 {
		c.LookupsPerTable = lookups
	}
	if err := c.Validate(); err != nil {
		return c, err
	}
	return c, nil
}

// SLATarget is one of the three tail-latency targets the paper evaluates
// (Section V: low/high are 50%% below/above the published medium target).
type SLATarget int

// SLA target levels.
const (
	SLALow SLATarget = iota
	SLAMedium
	SLAHigh
)

// String implements fmt.Stringer.
func (s SLATarget) String() string {
	switch s {
	case SLALow:
		return "low"
	case SLAMedium:
		return "medium"
	case SLAHigh:
		return "high"
	default:
		return fmt.Sprintf("SLATarget(%d)", int(s))
	}
}

// AllSLATargets lists the three targets in evaluation order.
func AllSLATargets() []SLATarget { return []SLATarget{SLALow, SLAMedium, SLAHigh} }

// SLA returns the p95 tail-latency target at the given level.
func (c *Config) SLA(level SLATarget) time.Duration {
	switch level {
	case SLALow:
		return c.SLAMedium / 2
	case SLAMedium:
		return c.SLAMedium
	case SLAHigh:
		return c.SLAMedium + c.SLAMedium/2
	default:
		panic(fmt.Sprintf("model: unknown SLA target %d", int(level)))
	}
}

// plainTables returns the number of tables pooled by a plain EmbeddingBag
// (i.e. excluding behaviour-sequence tables).
func (c *Config) plainTables() int {
	if c.SeqPool == SeqNone {
		return c.NumTables
	}
	return c.NumTables - c.SeqTables
}

// denseOutDim returns the width the dense path contributes to the feature
// interaction: the Dense-FC output, the raw dense width for passthrough, or
// zero when the model has no continuous features.
func (c *Config) denseOutDim() int {
	if c.DenseInDim == 0 {
		return 0
	}
	if len(c.DenseFC) == 0 {
		return c.DenseInDim
	}
	return c.DenseFC[len(c.DenseFC)-1]
}

// sparseOutDim returns the width the sparse path contributes to the feature
// interaction, accounting for pooling mode, GMF, and sequence reductions.
func (c *Config) sparseOutDim() int {
	if c.NumTables == 0 {
		return 0
	}
	plain := c.plainTables()
	if c.UseGMF {
		// NCF's first two tables feed the GMF product instead of the
		// plain concatenation.
		plain -= 2
	}
	var width int
	if c.Pool == nn.PoolConcat {
		width = plain * c.LookupsPerTable * c.EmbDim
	} else {
		width = plain * c.EmbDim
	}
	switch c.SeqPool {
	case SeqAttention:
		width += c.SeqTables * c.EmbDim
	case SeqAUGRU:
		width += c.SeqTables * c.GRUHidden
	}
	if c.UseGMF {
		width += c.EmbDim // the elementwise-product vector
	}
	return width
}

// InteractionDim returns the predictor-stack input width: the concatenation
// of the dense and sparse path outputs (paper Fig. 2's feature interaction).
func (c *Config) InteractionDim() int {
	return c.denseOutDim() + c.sparseOutDim()
}
