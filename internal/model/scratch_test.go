package model

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"github.com/deeprecinfra/deeprecsys/internal/tensor"
)

// forwardModels covers every architecture family: embedding-dominated,
// MLP-dominated with GMF, passthrough dense, multi-task, attention, AUGRU.
var forwardModels = []string{"DLRM-RMC1", "NCF", "WnD", "MT-WnD", "DIN", "DIEN"}

func sameBits(t *testing.T, name string, got, want *tensor.Tensor) {
	t.Helper()
	if !got.SameShape(want) {
		t.Fatalf("%s: shape [%dx%d], want [%dx%d]", name, got.Rows, got.Cols, want.Rows, want.Cols)
	}
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("%s: element %d = %v, want %v (bit-for-bit)", name, i, got.Data[i], want.Data[i])
		}
	}
}

// Forward (pooled scratch), ForwardInto (caller scratch, reused twice), and
// ForwardSplit (row-split across par) must agree bit for bit.
func TestForwardVariantsBitIdentical(t *testing.T) {
	for _, name := range forwardModels {
		cfg, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		m := MustNew(cfg, 1)
		in := m.NewInput(rand.New(rand.NewSource(2)), 9)
		want := m.Forward(in)

		s := NewScratch()
		for pass := 0; pass < 2; pass++ {
			sameBits(t, name+"/ForwardInto", m.ForwardInto(s, in), want)
		}

		scratches := []*Scratch{NewScratch(), NewScratch(), NewScratch()}
		for _, parts := range []int{1, 2, 3} {
			got := m.ForwardSplit(scratches, in, parts)
			sameBits(t, name+"/ForwardSplit", got, want)
		}
	}
}

// NewInputInto must consume the RNG exactly like NewInput and refill reused
// buffers to identical contents, including across size changes.
func TestNewInputIntoMatchesNewInput(t *testing.T) {
	for _, name := range []string{"DLRM-RMC1", "WnD", "DIEN"} {
		cfg, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		m := MustNew(cfg, 1)
		fresh := rand.New(rand.NewSource(7))
		reused := rand.New(rand.NewSource(7))
		s := NewScratch()
		for _, size := range []int{8, 16, 5, 16} { // grow, shrink, regrow
			want := m.NewInput(fresh, size)
			got := m.NewInputInto(s, reused, size)
			if got.Size != want.Size {
				t.Fatalf("%s: size %d, want %d", name, got.Size, want.Size)
			}
			if (got.Dense == nil) != (want.Dense == nil) {
				t.Fatalf("%s: dense presence mismatch", name)
			}
			if want.Dense != nil {
				sameBits(t, name+"/Dense", got.Dense, want.Dense)
			}
			for tt := range want.Sparse {
				for i := range want.Sparse[tt] {
					for j := range want.Sparse[tt][i] {
						if got.Sparse[tt][i][j] != want.Sparse[tt][i][j] {
							t.Fatalf("%s: index [%d][%d][%d] = %d, want %d",
								name, tt, i, j, got.Sparse[tt][i][j], want.Sparse[tt][i][j])
						}
					}
				}
			}
		}
	}
}

// The scratch forward path must be allocation-free in steady state — the
// acceptance headline of the compute-stack rewrite.
func TestForwardIntoSteadyStateAllocationFree(t *testing.T) {
	for _, name := range forwardModels {
		cfg, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		m := MustNew(cfg, 1)
		in := m.NewInput(rand.New(rand.NewSource(3)), 8)
		s := NewScratch()
		m.ForwardInto(s, in) // warm to the high-water mark
		if allocs := testing.AllocsPerRun(10, func() { m.ForwardInto(s, in) }); allocs != 0 {
			t.Errorf("%s: steady-state ForwardInto allocates %v times, want 0", name, allocs)
		}
	}
}

// RankTopN's bounded-heap selection must return exactly what sorting all
// candidates would, including duplicate-CTR tie-breaks by item index.
func TestRankTopNMatchesFullSort(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(400)
		ctrs := tensor.New(n, 1)
		for i := range ctrs.Data {
			// Coarse quantization forces plenty of exact ties.
			ctrs.Data[i] = float32(rng.Intn(17)) / 16
		}
		ref := make([]Ranked, n)
		for i := 0; i < n; i++ {
			ref[i] = Ranked{Item: i, CTR: ctrs.Data[i]}
		}
		sort.Slice(ref, func(a, b int) bool { return prefer(ref[a], ref[b]) })
		for _, topN := range []int{0, 1, 2, 5, n / 2, n, n + 3} {
			got := RankTopN(ctrs, topN)
			wantLen := topN
			if wantLen > n {
				wantLen = n
			}
			if wantLen < 0 {
				wantLen = 0
			}
			if len(got) != wantLen {
				t.Fatalf("trial %d topN %d: got %d results, want %d", trial, topN, len(got), wantLen)
			}
			for i := range got {
				if got[i] != ref[i] {
					t.Fatalf("trial %d topN %d: rank %d = %+v, want %+v", trial, topN, i, got[i], ref[i])
				}
			}
		}
	}
}

func TestRankTopNNaNSafety(t *testing.T) {
	// CTRs come out of a sigmoid so NaNs cannot occur in practice, but the
	// selection must at least not lose non-NaN candidates if they did.
	ctrs := tensor.New(4, 1)
	ctrs.Data[0] = 0.25
	ctrs.Data[1] = float32(math.NaN())
	ctrs.Data[2] = 0.75
	ctrs.Data[3] = 0.5
	got := RankTopN(ctrs, 2)
	if len(got) != 2 {
		t.Fatalf("got %d results", len(got))
	}
	if got[0].Item != 2 {
		t.Errorf("best = %+v, want item 2", got[0])
	}
}

// Concurrent forwards on distinct scratches must share no mutable state —
// including in the sum-pooling prefetch path, which only PoolSum models
// with many lookups exercise (run under -race).
func TestConcurrentForwardIntoDistinctScratches(t *testing.T) {
	cfg, err := ByName("DLRM-RMC1") // PoolSum, 80 lookups per table
	if err != nil {
		t.Fatal(err)
	}
	m := MustNew(cfg, 1)
	in := m.NewInput(rand.New(rand.NewSource(8)), 8)
	want := m.Forward(in)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := NewScratch()
			for i := 0; i < 5; i++ {
				got := m.ForwardInto(s, in)
				for j := range want.Data {
					if got.Data[j] != want.Data[j] {
						t.Errorf("concurrent forward diverged at %d", j)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}

func TestInputSliceAliases(t *testing.T) {
	cfg, err := ByName("DLRM-RMC1")
	if err != nil {
		t.Fatal(err)
	}
	m := MustNew(cfg, 1)
	in := m.NewInput(rand.New(rand.NewSource(5)), 6)
	s := in.Slice(2, 5)
	if s.Size != 3 {
		t.Fatalf("slice size %d", s.Size)
	}
	if &s.Dense.Data[0] != &in.Dense.Data[2*in.Dense.Cols] {
		t.Error("sliced dense rows do not alias the original")
	}
	if &s.Sparse[0][0][0] != &in.Sparse[0][2][0] {
		t.Error("sliced index lists do not alias the original")
	}
}
