package model

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"github.com/deeprecinfra/deeprecsys/internal/nn"
	"github.com/deeprecinfra/deeprecsys/internal/tensor"
)

// smallCfg returns a fast-to-build config used where the full zoo would be
// wastefully large.
func smallCfg() Config {
	return Config{
		Name: "tiny", DenseInDim: 8, DenseFC: []int{16, 4},
		NumTables: 3, TableRows: 50, LookupsPerTable: 4, EmbDim: 8, Pool: nn.PoolSum,
		PredictFC: []int{16, 8}, NumTasks: 1,
		Class: EmbeddingDominated, SLAMedium: 100 * time.Millisecond,
	}
}

func TestZooHasEightValidModels(t *testing.T) {
	zoo := Zoo()
	if len(zoo) != 8 {
		t.Fatalf("zoo has %d models, want 8", len(zoo))
	}
	seen := map[string]bool{}
	for _, cfg := range zoo {
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s: %v", cfg.Name, err)
		}
		if seen[cfg.Name] {
			t.Errorf("duplicate zoo name %s", cfg.Name)
		}
		seen[cfg.Name] = true
	}
	for _, want := range []string{"DLRM-RMC1", "DLRM-RMC2", "DLRM-RMC3", "NCF", "WnD", "MT-WnD", "DIN", "DIEN"} {
		if !seen[want] {
			t.Errorf("zoo missing %s", want)
		}
	}
}

func TestByName(t *testing.T) {
	cfg, err := ByName("DIN")
	if err != nil || cfg.Name != "DIN" {
		t.Fatalf("ByName(DIN) = %v, %v", cfg.Name, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("ByName should fail for unknown model")
	}
}

func TestSLATargets(t *testing.T) {
	cfg, _ := ByName("DLRM-RMC1")
	if cfg.SLA(SLAMedium) != 100*time.Millisecond {
		t.Errorf("medium SLA = %v", cfg.SLA(SLAMedium))
	}
	if cfg.SLA(SLALow) != 50*time.Millisecond {
		t.Errorf("low SLA = %v", cfg.SLA(SLALow))
	}
	if cfg.SLA(SLAHigh) != 150*time.Millisecond {
		t.Errorf("high SLA = %v", cfg.SLA(SLAHigh))
	}
}

func TestTableIIBottlenecksAndSLAs(t *testing.T) {
	want := map[string]struct {
		class Bottleneck
		sla   time.Duration
	}{
		"DLRM-RMC1": {EmbeddingDominated, 100 * time.Millisecond},
		"DLRM-RMC2": {EmbeddingDominated, 400 * time.Millisecond},
		"DLRM-RMC3": {MLPDominated, 100 * time.Millisecond},
		"NCF":       {MLPDominated, 5 * time.Millisecond},
		"WnD":       {MLPDominated, 25 * time.Millisecond},
		"MT-WnD":    {MLPDominated, 25 * time.Millisecond},
		"DIN":       {AttentionDominated, 100 * time.Millisecond},
		"DIEN":      {AttentionDominated, 35 * time.Millisecond},
	}
	for name, w := range want {
		cfg, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if cfg.Class != w.class {
			t.Errorf("%s class = %v, want %v", name, cfg.Class, w.class)
		}
		if cfg.SLAMedium != w.sla {
			t.Errorf("%s SLA = %v, want %v", name, cfg.SLAMedium, w.sla)
		}
	}
}

func TestConfigValidateRejectsBadConfigs(t *testing.T) {
	bad := []Config{
		{}, // no name
		func() Config { c := smallCfg(); c.PredictFC = nil; return c }(),
		func() Config { c := smallCfg(); c.NumTasks = 0; return c }(),
		func() Config { c := smallCfg(); c.DenseInDim = 0; c.NumTables = 0; return c }(),
		func() Config { c := smallCfg(); c.EmbDim = 0; return c }(),
		func() Config { c := smallCfg(); c.SLAMedium = 0; return c }(),
		func() Config {
			c := smallCfg()
			c.SeqPool = SeqAttention // needs SeqTables/SeqLen/AttentionHidden
			return c
		}(),
		func() Config { c := smallCfg(); c.UseGMF = true; c.NumTables = 1; return c }(),
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted invalid config", i)
		}
	}
}

func TestForwardShapesAndRangeAllZooModels(t *testing.T) {
	for _, cfg := range Zoo() {
		cfg := cfg
		t.Run(cfg.Name, func(t *testing.T) {
			m := MustNew(cfg, 42)
			rng := rand.New(rand.NewSource(1))
			for _, size := range []int{1, 3} {
				in := m.NewInput(rng, size)
				out := m.Forward(in)
				if out.Rows != size || out.Cols != 1 {
					t.Fatalf("output shape [%dx%d], want [%dx1]", out.Rows, out.Cols, size)
				}
				for _, v := range out.Data {
					if v < 0 || v > 1 {
						t.Fatalf("CTR %v outside [0,1]", v)
					}
				}
			}
		})
	}
}

func TestForwardDeterministicUnderSeed(t *testing.T) {
	cfg := smallCfg()
	run := func() *tensor.Tensor {
		m := MustNew(cfg, 7)
		in := m.NewInput(rand.New(rand.NewSource(3)), 4)
		return m.Forward(in)
	}
	a, b := run(), run()
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("forward pass not deterministic under fixed seeds")
		}
	}
}

func TestForwardPanicsOnMissingDense(t *testing.T) {
	m := MustNew(smallCfg(), 1)
	in := m.NewInput(rand.New(rand.NewSource(1)), 2)
	in.Dense = nil
	defer func() {
		if recover() == nil {
			t.Error("expected panic on missing dense input")
		}
	}()
	m.Forward(in)
}

func TestForwardPanicsOnWrongTableCount(t *testing.T) {
	m := MustNew(smallCfg(), 1)
	in := m.NewInput(rand.New(rand.NewSource(1)), 2)
	in.Sparse = in.Sparse[:1]
	defer func() {
		if recover() == nil {
			t.Error("expected panic on wrong sparse feature count")
		}
	}()
	m.Forward(in)
}

func TestInteractionDimMatchesAssembly(t *testing.T) {
	// Forward already panics if the assembled width deviates from
	// InteractionDim; exercising all zoo models pins that contract.
	for _, cfg := range Zoo() {
		m := MustNew(cfg, 11)
		in := m.NewInput(rand.New(rand.NewSource(2)), 2)
		m.Forward(in) // would panic on mismatch
	}
}

func TestNewInputShapes(t *testing.T) {
	cfg, _ := ByName("DIN")
	m := MustNew(cfg, 5)
	in := m.NewInput(rand.New(rand.NewSource(4)), 6)
	if len(in.Sparse) != cfg.NumTables {
		t.Fatalf("sparse tables = %d, want %d", len(in.Sparse), cfg.NumTables)
	}
	// Sequence tables carry SeqLen lookups, plain tables LookupsPerTable.
	if got := len(in.Sparse[2][0]); got != cfg.SeqLen {
		t.Errorf("seq table lookups = %d, want %d", got, cfg.SeqLen)
	}
	if got := len(in.Sparse[0][0]); got != cfg.LookupsPerTable {
		t.Errorf("plain table lookups = %d, want %d", got, cfg.LookupsPerTable)
	}
	if in.Dense != nil {
		t.Error("DIN should have no dense input")
	}
}

func TestNewInputPanicsOnZeroSize(t *testing.T) {
	m := MustNew(smallCfg(), 1)
	defer func() {
		if recover() == nil {
			t.Error("expected panic on size 0")
		}
	}()
	m.NewInput(rand.New(rand.NewSource(1)), 0)
}

func TestProfileMatchesModelAccounting(t *testing.T) {
	// BuildProfile's analytic FLOP/byte math must agree with the
	// instantiated layers' own accounting for all zoo models.
	for _, cfg := range Zoo() {
		cfg := cfg
		t.Run(cfg.Name, func(t *testing.T) {
			m := MustNew(cfg, 3)
			p := BuildProfile(cfg)

			var wantDense int64
			if m.dense != nil {
				wantDense = m.dense.FLOPsPerItem()
			}
			if p.DenseFLOPs != wantDense {
				t.Errorf("DenseFLOPs = %d, want %d", p.DenseFLOPs, wantDense)
			}

			var wantPredict int64
			for _, pr := range m.predictors {
				wantPredict += pr.FLOPsPerItem()
			}
			if cfg.UseGMF {
				wantPredict += int64(cfg.EmbDim)
			}
			if p.PredictFLOPs != wantPredict {
				t.Errorf("PredictFLOPs = %d, want %d", p.PredictFLOPs, wantPredict)
			}

			if cfg.SeqPool != SeqNone {
				perPos := m.attention.FLOPsPerPosition()
				want := int64(cfg.SeqTables) * int64(cfg.SeqLen) * perPos
				if p.AttnFLOPs != want {
					t.Errorf("AttnFLOPs = %d, want %d", p.AttnFLOPs, want)
				}
			}
			if cfg.SeqPool == SeqAUGRU {
				want := int64(cfg.SeqTables) * int64(cfg.SeqLen) * m.gru.Cell.FLOPsPerStepPerItem()
				if p.GRUFLOPs != want {
					t.Errorf("GRUFLOPs = %d, want %d", p.GRUFLOPs, want)
				}
			}

			var wantEmb int64
			for ti, bag := range m.bags {
				lookups := cfg.LookupsPerTable
				if m.isSeqTable(ti) {
					lookups = cfg.SeqLen
				}
				wantEmb += bag.BytesPerItem(lookups)
			}
			if p.EmbBytes != wantEmb {
				t.Errorf("EmbBytes = %d, want %d", p.EmbBytes, wantEmb)
			}
		})
	}
}

func TestProfileBottleneckClassesMatchTableII(t *testing.T) {
	// The zoo's Table II classification must be consistent with the
	// profiles' own arithmetic: embedding-dominated models move far more
	// bytes than MLP-dominated ones relative to their compute.
	get := func(name string) Profile {
		cfg, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		return BuildProfile(cfg)
	}
	rmc1, rmc3, ncf, dien := get("DLRM-RMC1"), get("DLRM-RMC3"), get("NCF"), get("DIEN")

	if rmc1.ArithmeticIntensity() >= rmc3.ArithmeticIntensity() {
		t.Errorf("RMC1 intensity %v should be below RMC3 %v",
			rmc1.ArithmeticIntensity(), rmc3.ArithmeticIntensity())
	}
	if rmc1.EmbBytes <= rmc3.EmbBytes {
		t.Errorf("RMC1 emb bytes %d should exceed RMC3 %d", rmc1.EmbBytes, rmc3.EmbBytes)
	}
	if ncf.MLPFLOPs() <= ncf.AttnFLOPs+ncf.GRUFLOPs {
		t.Error("NCF should be MLP-dominated in FLOPs")
	}
	if dien.GRUFLOPs == 0 {
		t.Error("DIEN must have recurrent FLOPs")
	}
	if dien.GRUFLOPs+dien.AttnFLOPs <= dien.MLPFLOPs() {
		t.Errorf("DIEN sequence FLOPs (%d) should dominate MLP FLOPs (%d)",
			dien.GRUFLOPs+dien.AttnFLOPs, dien.MLPFLOPs())
	}
}

func TestRankTopN(t *testing.T) {
	ctrs := tensor.FromSlice(5, 1, []float32{0.1, 0.9, 0.5, 0.9, 0.2})
	top := RankTopN(ctrs, 3)
	if len(top) != 3 {
		t.Fatalf("got %d results", len(top))
	}
	if top[0].Item != 1 || top[1].Item != 3 || top[2].Item != 2 {
		t.Errorf("ranking = %+v", top)
	}
	if got := RankTopN(ctrs, 100); len(got) != 5 {
		t.Errorf("over-asking should clamp: got %d", len(got))
	}
	if got := RankTopN(ctrs, 0); got != nil {
		t.Errorf("n=0 should return nil, got %v", got)
	}
}

func TestRankTopNPanicsOnMatrix(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	RankTopN(tensor.New(3, 2), 1)
}

// Property: for any valid small config, InteractionDim is positive and the
// forward output shape follows the input size.
func TestForwardShapeProperty(t *testing.T) {
	f := func(tables8, lookups8, dim8, size8 uint8) bool {
		cfg := smallCfg()
		cfg.NumTables = int(tables8%4) + 1
		cfg.LookupsPerTable = int(lookups8%8) + 1
		cfg.EmbDim = int(dim8%16) + 1
		if err := cfg.Validate(); err != nil {
			return true
		}
		m := MustNew(cfg, 9)
		size := int(size8%6) + 1
		out := m.Forward(m.NewInput(rand.New(rand.NewSource(1)), size))
		return out.Rows == size && out.Cols == 1 && cfg.InteractionDim() > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestBottleneckString(t *testing.T) {
	if EmbeddingDominated.String() != "embedding-dominated" ||
		MLPDominated.String() != "MLP-dominated" ||
		AttentionDominated.String() != "attention-dominated" {
		t.Error("Bottleneck.String mismatch")
	}
}

func TestSLATargetString(t *testing.T) {
	if SLALow.String() != "low" || SLAMedium.String() != "medium" || SLAHigh.String() != "high" {
		t.Error("SLATarget.String mismatch")
	}
	if len(AllSLATargets()) != 3 {
		t.Error("AllSLATargets should have 3 entries")
	}
}
