package model

import (
	"fmt"
	"sort"

	"github.com/deeprecinfra/deeprecsys/internal/tensor"
)

// Ranked is one candidate item with its predicted click-through rate.
type Ranked struct {
	Item int
	CTR  float32
}

// RankTopN implements the product-ranking step of the serving pipeline
// (paper Section II): given the [Size x 1] CTR output of Model.Forward, it
// returns the top-n items by predicted CTR, highest first. Ties are broken
// by item index for determinism.
func RankTopN(ctrs *tensor.Tensor, n int) []Ranked {
	if ctrs.Cols != 1 {
		panic(fmt.Sprintf("model: RankTopN expects a [N x 1] CTR tensor, got [%dx%d]", ctrs.Rows, ctrs.Cols))
	}
	if n <= 0 {
		return nil
	}
	ranked := make([]Ranked, ctrs.Rows)
	for i := 0; i < ctrs.Rows; i++ {
		ranked[i] = Ranked{Item: i, CTR: ctrs.Data[i]}
	}
	sort.Slice(ranked, func(a, b int) bool {
		if ranked[a].CTR != ranked[b].CTR {
			return ranked[a].CTR > ranked[b].CTR
		}
		return ranked[a].Item < ranked[b].Item
	})
	if n > len(ranked) {
		n = len(ranked)
	}
	return ranked[:n]
}
