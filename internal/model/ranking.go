package model

import (
	"fmt"
	"sort"

	"github.com/deeprecinfra/deeprecsys/internal/tensor"
)

// Ranked is one candidate item with its predicted click-through rate.
type Ranked struct {
	Item int
	CTR  float32
}

// prefer reports whether a ranks strictly ahead of b: higher CTR first,
// ties broken by lower item index for determinism.
func prefer(a, b Ranked) bool {
	if a.CTR != b.CTR {
		return a.CTR > b.CTR
	}
	return a.Item < b.Item
}

// RankTopN implements the product-ranking step of the serving pipeline
// (paper Section II): given the [Size x 1] CTR output of Model.Forward, it
// returns the top-n items by predicted CTR, highest first. Ties are broken
// by item index for determinism.
//
// Selection is a bounded min-heap over the candidate stream — O(N log n)
// instead of the O(N log N) full sort, and the only allocation is the
// n-element result. The ranking order (including ties) is identical to
// sorting all N candidates and truncating.
func RankTopN(ctrs *tensor.Tensor, n int) []Ranked {
	if ctrs.Cols != 1 {
		panic(fmt.Sprintf("model: RankTopN expects a [N x 1] CTR tensor, got [%dx%d]", ctrs.Rows, ctrs.Cols))
	}
	if n <= 0 {
		return nil
	}
	if n > ctrs.Rows {
		n = ctrs.Rows
	}

	// Fill the heap with the first n candidates, then sift: h[0] is the
	// worst retained candidate, evicted whenever a better one streams by.
	h := make([]Ranked, n)
	for i := 0; i < n; i++ {
		h[i] = Ranked{Item: i, CTR: ctrs.Data[i]}
	}
	for i := n/2 - 1; i >= 0; i-- {
		siftDown(h, i)
	}
	for i := n; i < ctrs.Rows; i++ {
		r := Ranked{Item: i, CTR: ctrs.Data[i]}
		if prefer(r, h[0]) {
			h[0] = r
			siftDown(h, 0)
		}
	}

	// The heap holds exactly the top-n set; order it best-first.
	sort.Slice(h, func(a, b int) bool { return prefer(h[a], h[b]) })
	return h
}

// siftDown restores the min-heap property (worst candidate at the root)
// from index i.
func siftDown(h []Ranked, i int) {
	for {
		worst := i
		if l := 2*i + 1; l < len(h) && prefer(h[worst], h[l]) {
			worst = l
		}
		if r := 2*i + 2; r < len(h) && prefer(h[worst], h[r]) {
			worst = r
		}
		if worst == i {
			return
		}
		h[i], h[worst] = h[worst], h[i]
		i = worst
	}
}
