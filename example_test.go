package deeprecsys_test

import (
	"context"
	"fmt"
	"time"

	deeprecsys "github.com/deeprecinfra/deeprecsys"
)

// The README's library snippets live here as compiled, runnable examples:
// godoc renders them, `go test` executes them, and the build breaks if the
// public surface drifts away from what the docs show.

// ExampleSystem_Tune is the quickstart: build a System and run the
// DeepRecSched hill climb against a p95 SLA. The tuned configuration must
// sustain at least the static production baseline's throughput — the
// paper's headline comparison (Fig. 11).
func ExampleSystem_Tune() {
	sys, err := deeprecsys.NewSystem("DLRM-RMC1", "skylake",
		deeprecsys.WithSearchFidelity(400, 0.05)) // reduced fidelity: keep the example fast
	if err != nil {
		fmt.Println(err)
		return
	}
	sla := 100 * time.Millisecond
	tuned := sys.Tune(sla)
	baseline := sys.Baseline(sla)
	fmt.Println(tuned.BatchSize >= 1, tuned.QPS >= baseline.QPS, tuned.P95 <= sla)
	// Output: true true true
}

// ExampleSystem_Serve starts a live concurrent Service, submits one real
// query (100 candidates, top-3 by predicted CTR), and reads the online
// stats. Submit is safe from any number of goroutines; Close drains.
func ExampleSystem_Serve() {
	sys, err := deeprecsys.NewSystem("NCF", "skylake")
	if err != nil {
		fmt.Println(err)
		return
	}
	svc, err := sys.Serve(deeprecsys.ServeOptions{Workers: 2, BatchSize: 32})
	if err != nil {
		fmt.Println(err)
		return
	}
	defer svc.Close()

	reply, err := svc.Submit(context.Background(), 100, 3)
	if err != nil {
		fmt.Println(err)
		return
	}
	st := svc.Stats()
	fmt.Println(len(reply.Recs), reply.Latency > 0, st.Completed, st.P95 > 0, st.SLA)
	// Output: 3 true 1 true 5ms
}

// ExampleSystem_Serve_fleet serves through the fleet tier: two replicas
// behind the least-loaded router, fleet-wide stats, and a membership
// change that never drops in-flight queries.
func ExampleSystem_Serve_fleet() {
	sys, err := deeprecsys.NewSystem("NCF", "skylake")
	if err != nil {
		fmt.Println(err)
		return
	}
	svc, err := sys.Serve(deeprecsys.ServeOptions{
		Workers:       1,
		BatchSize:     32,
		Replicas:      2,
		RoutingPolicy: "least-loaded",
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	defer svc.Close()

	reply, err := svc.Submit(context.Background(), 100, 0)
	if err != nil {
		fmt.Println(err)
		return
	}
	id, err := svc.AddReplica(false) // grow the fleet while it serves
	if err != nil {
		fmt.Println(err)
		return
	}
	st := svc.Stats()
	fmt.Println(st.RoutingPolicy, st.Replicas, reply.Replica < 2, id, len(st.PerReplica))
	// Output: least-loaded 3 true 2 3
}

// ExampleParseWorkload builds serving scenarios from the spec grammar
// shared with cmd/loadgen and cmd/replay, and installs one on a System.
func ExampleParseWorkload() {
	wl, err := deeprecsys.ParseWorkload("fixed:100@uniform")
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(wl.Name())

	if _, err := deeprecsys.ParseWorkload("lognormal:4.0,0.9"); err != nil {
		fmt.Println(err)
		return
	}
	if _, err := deeprecsys.NewSystem("DLRM-RMC1", "skylake",
		deeprecsys.WithWorkload(wl)); err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("installed")
	// Output:
	// fixed(100)@uniform
	// installed
}
